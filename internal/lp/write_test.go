package lp

import (
	"math"
	"strings"
	"testing"
)

func TestWriteLPFormat(t *testing.T) {
	p := NewProblem("wtest")
	x := p.AddCol("x", 0, 1, -3)
	y := p.AddCol("TSS(S1)", 0, math.Inf(1), 0)
	z := p.AddCol("sigma(p1a,S1)", 2, 2, 1)
	p.AddRow("cap", Le, 4, Term{x, 1}, Term{y, 2})
	p.AddRow("sel", Eq, 1, Term{z, 1})
	p.AddRow("lo", Ge, -1, Term{y, 1}, Term{x, -1})

	var b strings.Builder
	if err := p.WriteLP(&b, []ColID{x, z}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"Minimize", "Subject To", "Bounds", "General", "End",
		"<= 4", "= 1", ">= -1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("LP output missing %q:\n%s", want, out)
		}
	}
	// Fixed column becomes an equality bound.
	if !strings.Contains(out, "= 2") {
		t.Errorf("fixed bound missing:\n%s", out)
	}
	// Names sanitized: no parens/commas.
	for _, bad := range []string{"(", ")", ","} {
		if strings.Contains(strings.SplitN(out, "Subject To", 2)[1], bad) {
			t.Errorf("unsanitized character %q in body:\n%s", bad, out)
		}
	}
}

func TestSanitizeLPName(t *testing.T) {
	cases := map[string]string{
		"sigma(p1a,S1)": "sigma_p1a_S1_7",
		"":              "c7",
		"9lives":        "v9lives_7",
	}
	for in, want := range cases {
		if got := sanitizeLPName(in, 7); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestTermRendering(t *testing.T) {
	if got := term(1, "x", true); got != "x" {
		t.Errorf("first unit term = %q", got)
	}
	if got := term(-2.5, "y", false); got != "- 2.5 y" {
		t.Errorf("negative term = %q", got)
	}
	if got := term(-1, "y", true); got != "- y" {
		t.Errorf("first negative unit term = %q", got)
	}
	if got := term(3, "z", false); got != "+ 3 z" {
		t.Errorf("positive term = %q", got)
	}
}
