package lp

import (
	"math/rand"
	"testing"
)

// TestHooksRejectWarmForcesCold: with the warm path vetoed on every call,
// the resolver must serve each solve from a cold rebuild and still return
// results identical to Problem.Solve.
func TestHooksRejectWarmForcesCold(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p, bins := randomProblem(rng)
	r, err := p.NewResolver(&Options{Hooks: &Hooks{RejectWarm: func() bool { return true }}})
	if err != nil {
		t.Fatal(err)
	}
	bounds := map[ColID][2]float64{}
	const steps = 40
	for i := 0; i < steps; i++ {
		bounds = mutateBounds(rng, bins, bounds)
		got, err := r.Solve(bounds)
		if err != nil {
			t.Fatal(err)
		}
		want, err := p.Solve(&Options{BoundOverride: bounds})
		if err != nil {
			t.Fatal(err)
		}
		if got.Status != want.Status {
			t.Fatalf("step %d: status %v, cold says %v", i, got.Status, want.Status)
		}
		if got.Status == Optimal && mathAbs(got.Obj-want.Obj) > 1e-7 {
			t.Fatalf("step %d: obj %g, cold says %g", i, got.Obj, want.Obj)
		}
	}
	st := r.Stats()
	if st.Warm != 0 {
		t.Fatalf("warm solves served despite rejection: %+v", st)
	}
	if st.Cold != steps {
		t.Fatalf("cold solves %d, want %d: %+v", st.Cold, steps, st)
	}
}

// TestHooksForceIterLimit: an injected one-iteration budget must surface
// as a clean IterLimit status — or, when the solve genuinely converges
// within its single allowed pivot, the same certificate an uncapped solve
// proves. It must never fabricate a certificate the uncapped solve would
// not issue.
func TestHooksForceIterLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p, bins := randomProblem(rng)
	opts := &Options{Hooks: &Hooks{ForceIterLimit: 1}}
	sol, err := p.Solve(opts)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != IterLimit {
		t.Fatalf("capped solve: %v, want iteration-limit", sol.Status)
	}
	r, err := p.NewResolver(opts)
	if err != nil {
		t.Fatal(err)
	}
	sawLimit := false
	bounds := map[ColID][2]float64{}
	for i := 0; i < 10; i++ {
		bounds = mutateBounds(rng, bins, bounds)
		got, err := r.Solve(bounds)
		if err != nil {
			t.Fatal(err)
		}
		if got.Status == IterLimit {
			sawLimit = true
			continue
		}
		want, err := p.Solve(&Options{BoundOverride: bounds})
		if err != nil {
			t.Fatal(err)
		}
		if got.Status != want.Status {
			t.Fatalf("capped re-solve %d fabricated %v, uncapped proves %v", i, got.Status, want.Status)
		}
	}
	if !sawLimit {
		t.Fatal("iteration cap never fired across the re-solve sequence")
	}
}

// TestHooksOnPivotObserves: the pivot hook must see every iteration of a
// normal solve, in order, so cancellation/crash injection points exist at
// pivot granularity.
func TestHooksOnPivotObserves(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	p, _ := randomProblem(rng)
	var seen []int
	sol, err := p.Solve(&Options{Hooks: &Hooks{OnPivot: func(it int) { seen = append(seen, it) }}})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) == 0 {
		t.Fatal("pivot hook never fired")
	}
	if sol.Iters == 0 || len(seen) < sol.Iters {
		t.Fatalf("hook fired %d times for %d iterations", len(seen), sol.Iters)
	}
	for i := 1; i < len(seen); i++ {
		if seen[i] < seen[i-1] {
			t.Fatalf("iteration counts not monotone: %d after %d", seen[i], seen[i-1])
		}
	}
}

func mathAbs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
