package lp

import (
	"math"
	"time"
)

// varStatus tracks where a column currently sits.
type varStatus int8

const (
	atLower varStatus = iota
	atUpper
	basic
)

// simplex is the working state of one solve: a dense tableau over
// structural + slack + artificial columns.
//
// Internal column layout: [0, nStruct) structural variables in problem
// order, [nStruct, nStruct+nSlack) slacks (one per inequality row),
// [nStruct+nSlack, nTot) artificials (one per row that needs one).
type simplex struct {
	p        *Problem
	eps      float64
	max      int
	hooks    *Hooks
	deadline time.Time

	m       int // rows
	nStruct int
	nTot    int // all columns

	lb, ub []float64 // per internal column
	cost   []float64 // current phase objective
	isArt  []bool

	tab      [][]float64 // m × nTot, kept as B⁻¹A
	xB       []float64   // values of basic variables per row
	basicVar []int       // internal column basic in each row
	rowOf    []int       // inverse of basicVar: row of a basic column, -1 if nonbasic
	status   []varStatus // per internal column
	d        []float64   // reduced-cost row for current phase
	obj      float64     // current phase objective value

	iters  int
	bland  bool    // anti-cycling mode
	stall  int     // iterations without objective improvement
	pivIdx []int32 // scratch: nonzero support of the current pivot row
}

func newSimplex(p *Problem, opts *Options) *simplex {
	s := &simplex{p: p, eps: opts.eps(), max: opts.maxIters(p), hooks: opts.hooks(), deadline: opts.deadline()}
	s.build(opts)
	return s
}

// build assembles the equality-form tableau. Every row is normalized to
//
//	a·x + slack = b   (slack ∈ [0,∞) for ≤-normalized rows; none for =)
//
// with ≥ rows multiplied by −1 first. Structural nonbasics start at their
// lower bound; a slack whose implied value is feasible becomes basic,
// otherwise the row receives a basic artificial absorbing the residual.
func (s *simplex) build(opts *Options) {
	p := s.p
	s.m = len(p.rows)
	s.nStruct = len(p.cols)

	// Per-row slack allocation.
	slackOf := make([]int, s.m) // internal column of row's slack, or -1
	nSlack := 0
	for i, r := range p.rows {
		if r.Sense == Eq {
			slackOf[i] = -1
		} else {
			slackOf[i] = s.nStruct + nSlack
			nSlack++
		}
	}
	// Worst case one artificial per row; allocate lazily below.
	s.nTot = s.nStruct + nSlack // artificials appended as needed
	lbs := make([]float64, 0, s.nTot+s.m)
	ubs := make([]float64, 0, s.nTot+s.m)
	for _, c := range p.cols {
		lb, ub := c.Lb, c.Ub
		if opts != nil && opts.BoundOverride != nil {
			if b, ok := opts.BoundOverride[ColID(len(lbs))]; ok {
				lb, ub = b[0], b[1]
			}
		}
		lbs = append(lbs, lb)
		ubs = append(ubs, ub)
	}
	for i := 0; i < nSlack; i++ {
		lbs = append(lbs, 0)
		ubs = append(ubs, math.Inf(1))
	}

	// Dense rows in ≤-normalized equality form.
	rowA := make([][]float64, s.m)
	rhs := make([]float64, s.m)
	for i, r := range p.rows {
		a := make([]float64, s.nTot) // artificial columns appended later
		sign := 1.0
		if r.Sense == Ge {
			sign = -1
		}
		for _, t := range r.Terms {
			a[t.Col] += sign * t.Coef
		}
		if slackOf[i] >= 0 {
			a[slackOf[i]] = 1
		}
		rowA[i] = a
		rhs[i] = sign * r.Rhs
	}

	// Nonbasic structural start values: lower bound.
	xN := make([]float64, s.nTot)
	for j := 0; j < s.nStruct; j++ {
		xN[j] = lbs[j]
	}

	// Residual per row given all structural at lb, slacks at 0.
	s.basicVar = make([]int, s.m)
	s.xB = make([]float64, s.m)
	artRows := []int{}
	for i := 0; i < s.m; i++ {
		res := rhs[i]
		for j := 0; j < s.nStruct; j++ {
			if rowA[i][j] != 0 {
				res -= rowA[i][j] * xN[j]
			}
		}
		if slackOf[i] >= 0 && res >= 0 {
			// Slack can serve as the basic variable directly.
			s.basicVar[i] = slackOf[i]
			s.xB[i] = res
		} else {
			s.basicVar[i] = -1 // artificial needed
			s.xB[i] = res      // signed residual; fixed below
			artRows = append(artRows, i)
		}
	}

	nArt := len(artRows)
	total := s.nTot + nArt
	s.isArt = make([]bool, total)
	for k, i := range artRows {
		col := s.nTot + k
		s.isArt[col] = true
		lbs = append(lbs, 0)
		ubs = append(ubs, math.Inf(1))
		coef := 1.0
		if s.xB[i] < 0 {
			coef = -1
		}
		// Extend row i with the artificial column; others get 0 via the
		// reallocation below.
		rowA[i] = append(rowA[i], make([]float64, nArt)...)
		rowA[i][col] = coef
		s.basicVar[i] = col
		s.xB[i] = math.Abs(s.xB[i])
	}
	for i := 0; i < s.m; i++ {
		if len(rowA[i]) < total {
			rowA[i] = append(rowA[i], make([]float64, total-len(rowA[i]))...)
		}
	}
	s.nTot = total
	s.lb, s.ub = lbs, ubs

	// Scale rows so basic columns have coefficient +1 (artificials with
	// coefficient −1 were introduced only when residual < 0; scaling flips
	// the row so its basis entry is +1).
	for i := 0; i < s.m; i++ {
		bv := s.basicVar[i]
		if rowA[i][bv] < 0 {
			for j := range rowA[i] {
				rowA[i][j] = -rowA[i][j]
			}
		}
	}
	s.tab = rowA

	// Now eliminate basic columns from other rows. Initially every basic
	// column (slack or artificial) appears in exactly one row, so the
	// basis is already the identity; nothing to eliminate.

	s.status = make([]varStatus, s.nTot)
	for j := 0; j < s.nTot; j++ {
		s.status[j] = atLower
	}
	s.rowOf = make([]int, s.nTot)
	for j := range s.rowOf {
		s.rowOf[j] = -1
	}
	for i, bv := range s.basicVar {
		s.status[bv] = basic
		s.rowOf[bv] = i
	}
}

// setPhaseObjective installs the cost vector and recomputes the reduced
// cost row d and objective value from scratch.
func (s *simplex) setPhaseObjective(phase1 bool) {
	s.cost = make([]float64, s.nTot)
	if phase1 {
		for j := 0; j < s.nTot; j++ {
			if s.isArt[j] {
				s.cost[j] = 1
			}
		}
	} else {
		for j := 0; j < s.nStruct; j++ {
			s.cost[j] = s.p.cols[j].Obj
		}
	}
	// d_j = c_j − Σ_i c_B(i) · tab[i][j]; obj = Σ c_j x_j.
	s.d = make([]float64, s.nTot)
	copy(s.d, s.cost)
	s.obj = 0
	for i := 0; i < s.m; i++ {
		cb := s.cost[s.basicVar[i]]
		if cb == 0 {
			continue
		}
		row := s.tab[i]
		for j := 0; j < s.nTot; j++ {
			if row[j] != 0 {
				s.d[j] -= cb * row[j]
			}
		}
	}
	for j := 0; j < s.nTot; j++ {
		s.obj += s.cost[j] * s.value(j)
	}
	s.bland = false
	s.stall = 0
}

// value returns the current value of internal column j.
func (s *simplex) value(j int) float64 {
	switch s.status[j] {
	case atLower:
		return s.lb[j]
	case atUpper:
		return s.ub[j]
	default:
		if r := s.rowOf[j]; r >= 0 {
			return s.xB[r]
		}
		return 0
	}
}

// run executes phase 1 (if artificials exist) then phase 2.
func (s *simplex) run() *Solution {
	anyArt := false
	for _, a := range s.isArt {
		if a {
			anyArt = true
			break
		}
	}
	if anyArt {
		s.setPhaseObjective(true)
		st := s.iterate(true)
		if st == IterLimit {
			return s.finish(IterLimit)
		}
		if s.obj > 1e-6 {
			return s.finish(Infeasible)
		}
		s.retireArtificials()
	}
	s.setPhaseObjective(false)
	st := s.iterate(false)
	return s.finish(st)
}

// retireArtificials pins every artificial to zero so phase 2 can never
// reintroduce infeasibility, and pivots basic artificials out of the basis
// where possible. A basic artificial that cannot be pivoted out sits at
// value 0 in a redundant row and is harmless.
func (s *simplex) retireArtificials() {
	for j := 0; j < s.nTot; j++ {
		if s.isArt[j] {
			s.ub[j] = 0
		}
	}
	for i := 0; i < s.m; i++ {
		bv := s.basicVar[i]
		if !s.isArt[bv] {
			continue
		}
		// Find any non-artificial column with a usable pivot element.
		pivot := -1
		for j := 0; j < s.nTot; j++ {
			if !s.isArt[j] && s.status[j] != basic && math.Abs(s.tab[i][j]) > 1e-7 {
				pivot = j
				break
			}
		}
		if pivot >= 0 {
			// Degenerate pivot: the artificial is at 0, so the entering
			// variable stays at its current bound value and feasibility is
			// preserved.
			s.status[bv] = atLower
			s.pivot(i, pivot, s.value(pivot))
		}
	}
}

// iterate runs primal simplex iterations for the current phase.
func (s *simplex) iterate(phase1 bool) Status {
	for {
		if h := s.hooks; h != nil && h.OnPivot != nil {
			h.OnPivot(s.iters)
		}
		if s.iters >= s.max {
			return IterLimit
		}
		if !s.deadline.IsZero() && s.iters%deadlineStride == 0 && time.Now().After(s.deadline) {
			return IterLimit
		}
		s.iters++

		j, dir := s.chooseEntering(phase1)
		if j < 0 {
			return Optimal
		}

		leave, t, hitUpper := s.ratioTest(j, dir)
		if leave == -2 {
			if phase1 {
				// Unbounded phase-1 objective cannot happen (bounded
				// below by 0); treat as numerical trouble.
				return IterLimit
			}
			return Unbounded
		}

		prevObj := s.obj
		if leave == -1 {
			// Bound flip: j moves from one bound to the other.
			s.applyStep(j, dir, t)
			if s.status[j] == atLower {
				s.status[j] = atUpper
			} else {
				s.status[j] = atLower
			}
		} else {
			s.applyStep(j, dir, t)
			newVal := s.boundValue(j, dir, t)
			lv := s.basicVar[leave]
			if hitUpper {
				s.status[lv] = atUpper
			} else {
				s.status[lv] = atLower
			}
			s.pivot(leave, j, newVal)
		}
		if s.obj < prevObj-s.eps {
			s.stall = 0
		} else {
			s.stall++
			if s.stall > 2*(s.m+s.nTot) {
				s.bland = true
			}
		}
	}
}

// chooseEntering picks a nonbasic column whose move improves the objective,
// returning its index and move direction (+1 from lower bound, −1 from
// upper). Returns (-1, 0) at optimality.
func (s *simplex) chooseEntering(phase1 bool) (int, float64) {
	bestJ, bestScore, bestDir := -1, s.eps, 0.0
	for j := 0; j < s.nTot; j++ {
		if s.status[j] == basic {
			continue
		}
		if s.isArt[j] && !phase1 {
			continue
		}
		if s.lb[j] == s.ub[j] {
			continue // fixed variable can never move
		}
		var score, dir float64
		switch s.status[j] {
		case atLower:
			if s.d[j] < -s.eps {
				score, dir = -s.d[j], 1
			}
		case atUpper:
			if s.d[j] > s.eps {
				score, dir = s.d[j], -1
			}
		}
		if dir == 0 {
			continue
		}
		if s.bland {
			return j, dir // Bland: first eligible index
		}
		if score > bestScore {
			bestJ, bestScore, bestDir = j, score, dir
		}
	}
	return bestJ, bestDir
}

// ratioTest computes how far column j can move in direction dir.
// Returns (leaveRow, step, leavingHitUpper); leaveRow -1 means a bound flip
// of j itself, -2 means unbounded.
func (s *simplex) ratioTest(j int, dir float64) (int, float64, bool) {
	t := math.Inf(1)
	if !math.IsInf(s.ub[j], 1) {
		t = s.ub[j] - s.lb[j]
	}
	leave := -1
	hitUpper := false
	for i := 0; i < s.m; i++ {
		y := s.tab[i][j]
		if y == 0 {
			continue
		}
		delta := dir * y // basic i changes by −delta·t
		bv := s.basicVar[i]
		var limit float64
		var upper bool
		if delta > s.eps {
			limit = (s.xB[i] - s.lb[bv]) / delta
			upper = false
		} else if delta < -s.eps {
			if math.IsInf(s.ub[bv], 1) {
				continue
			}
			limit = (s.ub[bv] - s.xB[i]) / (-delta)
			upper = true
		} else {
			continue
		}
		if limit < -s.eps {
			limit = 0
		}
		if limit < t-s.eps ||
			(limit < t+s.eps && leave >= 0 && betterLeaving(s, i, leave, j)) {
			t = limit
			leave = i
			hitUpper = upper
		}
	}
	if math.IsInf(t, 1) {
		return -2, 0, false
	}
	if t < 0 {
		t = 0
	}
	return leave, t, hitUpper
}

// betterLeaving breaks ratio-test ties: prefer the larger pivot element for
// numerical stability, then the smaller basic index (Bland-compatible).
func betterLeaving(s *simplex, cand, cur, j int) bool {
	pc, pu := math.Abs(s.tab[cand][j]), math.Abs(s.tab[cur][j])
	if s.bland {
		return s.basicVar[cand] < s.basicVar[cur]
	}
	if pc != pu {
		return pc > pu
	}
	return s.basicVar[cand] < s.basicVar[cur]
}

// applyStep moves nonbasic j by t in direction dir, updating basic values
// and the objective.
func (s *simplex) applyStep(j int, dir, t float64) {
	if t == 0 {
		return
	}
	for i := 0; i < s.m; i++ {
		if y := s.tab[i][j]; y != 0 {
			s.xB[i] -= t * dir * y
		}
	}
	s.obj += s.d[j] * dir * t
}

// boundValue returns the value of column j after moving t from its current
// bound in direction dir.
func (s *simplex) boundValue(j int, dir, t float64) float64 {
	if s.status[j] == atLower {
		return s.lb[j] + dir*t
	}
	return s.ub[j] + dir*t
}

// pivot makes column j basic in row r with value newVal, performing the
// full tableau row reduction.
func (s *simplex) pivot(r, j int, newVal float64) {
	row := s.tab[r]
	inv := 1 / row[j]
	// Normalize the pivot row and collect its nonzero support. The
	// elimination loops touch only supported columns: on the scheduling
	// models the tableau runs ~20% dense, so this is the difference
	// between m·nTot and m·nnz work on the solver's hottest kernel.
	idx := s.pivIdx[:0]
	for k, v := range row {
		if v == 0 {
			continue
		}
		row[k] = v * inv
		idx = append(idx, int32(k))
	}
	s.pivIdx = idx
	for i := 0; i < s.m; i++ {
		if i == r {
			continue
		}
		f := s.tab[i][j]
		if f == 0 {
			continue
		}
		ti := s.tab[i]
		for _, k := range idx {
			ti[k] -= f * row[k]
		}
	}
	if f := s.d[j]; f != 0 {
		d := s.d
		for _, k := range idx {
			d[k] -= f * row[k]
		}
	}
	if old := s.basicVar[r]; old != j {
		s.rowOf[old] = -1
	}
	s.status[j] = basic
	s.basicVar[r] = j
	s.rowOf[j] = r
	s.xB[r] = newVal
}

// finish extracts the structural solution.
func (s *simplex) finish(st Status) *Solution {
	sol := &Solution{}
	s.finishInto(st, sol)
	return sol
}

// finishInto extracts the structural solution into sol, reusing its slices
// when their capacity allows (the warm-start Resolver calls this with the
// same Solution on every re-solve to avoid per-node allocation).
func (s *simplex) finishInto(st Status, sol *Solution) {
	sol.Status = st
	sol.Iters = s.iters
	sol.Obj = 0
	if cap(sol.X) < s.nStruct {
		sol.X = make([]float64, s.nStruct)
	}
	sol.X = sol.X[:s.nStruct]
	for j := 0; j < s.nStruct; j++ {
		sol.X[j] = s.value(j)
	}
	if st == Optimal || st == IterLimit {
		obj := 0.0
		for j := 0; j < s.nStruct; j++ {
			obj += s.p.cols[j].Obj * sol.X[j]
		}
		sol.Obj = obj
	}
	if st == Optimal {
		if cap(sol.ReducedCosts) < s.nStruct {
			sol.ReducedCosts = make([]float64, s.nStruct)
		}
		sol.ReducedCosts = sol.ReducedCosts[:s.nStruct]
		copy(sol.ReducedCosts, s.d[:s.nStruct])
	} else {
		sol.ReducedCosts = nil
	}
}
