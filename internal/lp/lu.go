package lp

import "math"

// luFactor is a sparse LU factorization of a basis matrix B with partial
// pivoting on rows: P·B = L·U, stored column-wise (Gilbert–Peierls
// left-looking factorization). L has an implicit unit diagonal; U's
// diagonal is kept in udiag. perm/pinv map permuted positions to original
// rows and back. The factor plus a product-form eta file (etaCol) gives
// the revised simplex its FTRAN/BTRAN kernels.
type luFactor struct {
	n int

	lptr []int32 // n+1 offsets into lri/lx (strictly-below-diagonal entries)
	lri  []int32 // permuted row indices, > column index after finalize
	lx   []float64

	uptr  []int32 // n+1 offsets into uri/ux (strictly-above-diagonal entries)
	uri   []int32 // permuted row indices, < column index
	ux    []float64
	udiag []float64

	perm, pinv []int32 // perm[k] = original row at permuted position k

	// Factorization workspaces, reused across refactorizations.
	x       []float64
	pattern []int32 // DFS output: pattern of the current column
	stack   []int32 // DFS vertex stack (original row indices)
	pstack  []int32 // DFS per-level position within an L column
	visited []int32 // DFS mark, stamped with the current column+1
}

// luSingularTol is the smallest pivot magnitude accepted during
// factorization; a column with no larger candidate makes the basis
// numerically singular.
const luSingularTol = 1e-11

// factorize computes PB = LU for the m×m basis whose k-th column is
// returned by col. It reports false when the basis is singular (the
// caller falls back to rebuilding the solve from scratch).
func (f *luFactor) factorize(m int, col func(k int) ([]int32, []float64)) bool {
	f.n = m
	f.lptr = append(f.lptr[:0], 0)
	f.uptr = append(f.uptr[:0], 0)
	f.lri, f.lx = f.lri[:0], f.lx[:0]
	f.uri, f.ux = f.uri[:0], f.ux[:0]
	f.udiag = append(f.udiag[:0], make([]float64, m)...)
	if cap(f.x) < m {
		f.x = make([]float64, m)
		f.pattern = make([]int32, m)
		f.stack = make([]int32, m)
		f.pstack = make([]int32, m)
		f.visited = make([]int32, m)
		f.perm = make([]int32, m)
		f.pinv = make([]int32, m)
	}
	f.x = f.x[:m]
	f.pattern = f.pattern[:m]
	f.stack = f.stack[:m]
	f.pstack = f.pstack[:m]
	f.visited = f.visited[:m]
	f.perm = f.perm[:m]
	f.pinv = f.pinv[:m]
	for i := 0; i < m; i++ {
		f.visited[i] = 0
		f.pinv[i] = -1
		f.x[i] = 0
	}

	for k := 0; k < m; k++ {
		bi, bx := col(k)
		top := f.reach(bi, int32(k+1))
		// Numeric sparse triangular solve x = L\b over the reach, in the
		// topological order the DFS produced. L entries here still carry
		// original row indices; a row is "pivotal" once pinv is set.
		for _, i := range bi {
			f.x[i] = 0
		}
		for p := top; p < m; p++ {
			f.x[f.pattern[p]] = 0
		}
		for t, i := range bi {
			f.x[i] = bx[t]
		}
		for p := top; p < m; p++ {
			j := f.pattern[p]
			J := f.pinv[j]
			if J < 0 {
				continue
			}
			xj := f.x[j]
			if xj == 0 {
				continue
			}
			for q := f.lptr[J]; q < f.lptr[J+1]; q++ {
				f.x[f.lri[q]] -= f.lx[q] * xj
			}
		}
		// Partial pivoting: largest magnitude among not-yet-pivotal rows.
		ipiv, pmax := int32(-1), 0.0
		for p := top; p < m; p++ {
			i := f.pattern[p]
			if f.pinv[i] >= 0 {
				continue
			}
			if a := math.Abs(f.x[i]); a > pmax {
				ipiv, pmax = i, a
			}
		}
		if ipiv < 0 || pmax < luSingularTol {
			return false
		}
		pivVal := f.x[ipiv]
		f.udiag[k] = pivVal
		f.pinv[ipiv] = int32(k)
		for p := top; p < m; p++ {
			i := f.pattern[p]
			v := f.x[i]
			f.x[i] = 0
			if v == 0 || i == ipiv {
				continue
			}
			if J := f.pinv[i]; J >= 0 && J < int32(k) {
				f.uri = append(f.uri, J)
				f.ux = append(f.ux, v)
			} else if J < 0 {
				f.lri = append(f.lri, i) // original index; remapped below
				f.lx = append(f.lx, v/pivVal)
			}
		}
		f.lptr = append(f.lptr, int32(len(f.lri)))
		f.uptr = append(f.uptr, int32(len(f.uri)))
	}
	// Finalize: map L's original row indices to permuted positions.
	for t := range f.lri {
		f.lri[t] = f.pinv[f.lri[t]]
	}
	for i := 0; i < m; i++ {
		f.perm[f.pinv[i]] = int32(i)
	}
	return true
}

// reach computes the pattern of L\b by depth-first search over the graph
// of already-built L columns, writing the vertices (original row indices)
// into pattern[top..n-1] in topological order and returning top.
func (f *luFactor) reach(bi []int32, stamp int32) int {
	top := f.n
	for _, i := range bi {
		if f.visited[i] == stamp {
			continue
		}
		// Iterative DFS from i.
		head := 0
		f.stack[0] = i
		f.visited[i] = stamp
		J := f.pinv[i]
		if J < 0 {
			f.pstack[0] = 0
		} else {
			f.pstack[0] = f.lptr[J]
		}
		for head >= 0 {
			j := f.stack[head]
			J = f.pinv[j]
			end := int32(0)
			if J >= 0 {
				end = f.lptr[J+1]
			}
			descended := false
			for p := f.pstack[head]; p < end; p++ {
				child := f.lri[p]
				if f.visited[child] == stamp {
					continue
				}
				f.pstack[head] = p + 1
				head++
				f.stack[head] = child
				f.visited[child] = stamp
				if cJ := f.pinv[child]; cJ < 0 {
					f.pstack[head] = 0
				} else {
					f.pstack[head] = f.lptr[cJ]
				}
				descended = true
				break
			}
			if descended {
				continue
			}
			head--
			top--
			f.pattern[top] = j
		}
	}
	return top
}

// ftran solves B·x = b in place: x arrives holding b (original row
// indexing) and leaves holding the basis-position values.
func (f *luFactor) ftran(x, scratch []float64) {
	n := f.n
	t := scratch[:n]
	for k := 0; k < n; k++ {
		t[k] = x[f.perm[k]]
	}
	// L forward solve (unit diagonal).
	for k := 0; k < n; k++ {
		v := t[k]
		if v == 0 {
			continue
		}
		for p := f.lptr[k]; p < f.lptr[k+1]; p++ {
			t[f.lri[p]] -= f.lx[p] * v
		}
	}
	// U backward solve.
	for k := n - 1; k >= 0; k-- {
		v := t[k] / f.udiag[k]
		t[k] = v
		if v == 0 {
			continue
		}
		for p := f.uptr[k]; p < f.uptr[k+1]; p++ {
			t[f.uri[p]] -= f.ux[p] * v
		}
	}
	copy(x[:n], t)
}

// btran solves Bᵀ·y = c in place: y arrives holding c (basis-position
// indexing) and leaves holding the dual values indexed by original row.
func (f *luFactor) btran(y, scratch []float64) {
	n := f.n
	t := scratch[:n]
	// Uᵀ forward solve.
	for k := 0; k < n; k++ {
		v := y[k]
		for p := f.uptr[k]; p < f.uptr[k+1]; p++ {
			v -= f.ux[p] * t[f.uri[p]]
		}
		t[k] = v / f.udiag[k]
	}
	// Lᵀ backward solve (unit diagonal).
	for k := n - 1; k >= 0; k-- {
		v := t[k]
		for p := f.lptr[k]; p < f.lptr[k+1]; p++ {
			v -= f.lx[p] * t[f.lri[p]]
		}
		t[k] = v
	}
	for k := 0; k < n; k++ {
		y[f.perm[k]] = t[k]
	}
}

// etaCol is one product-form update of the basis: after column q with
// FTRAN image w = B⁻¹a_q enters at basis position r, the new basis is
// B·E where E is the identity with column r replaced by w. Solving with E
// costs one division plus the column's nonzeros.
type etaCol struct {
	r   int32
	pr  float64 // w[r], the pivot element
	ind []int32 // nonzero positions of w, excluding r
	val []float64
}

// etaDropTol drops near-zero entries when capturing an eta column; the
// periodic refactorization (which recomputes xB from scratch) bounds the
// drift this introduces.
const etaDropTol = 1e-13

// captureEta builds an eta column from the dense FTRAN image w.
func captureEta(r int, w []float64) etaCol {
	e := etaCol{r: int32(r), pr: w[r]}
	for i, v := range w {
		if i == r || math.Abs(v) <= etaDropTol {
			continue
		}
		e.ind = append(e.ind, int32(i))
		e.val = append(e.val, v)
	}
	return e
}

// ftranEtas applies the eta file to x after the base-factor FTRAN
// (oldest update first).
func ftranEtas(etas []etaCol, x []float64) {
	for k := range etas {
		e := &etas[k]
		xr := x[e.r]
		if xr == 0 {
			continue
		}
		xr /= e.pr
		for t, i := range e.ind {
			x[i] -= e.val[t] * xr
		}
		x[e.r] = xr
	}
}

// btranEtas applies the transposed eta file to y before the base-factor
// BTRAN (newest update first).
func btranEtas(etas []etaCol, y []float64) {
	for k := len(etas) - 1; k >= 0; k-- {
		e := &etas[k]
		s := y[e.r]
		for t, i := range e.ind {
			s -= e.val[t] * y[i]
		}
		y[e.r] = s / e.pr
	}
}
