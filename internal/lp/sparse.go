package lp

import (
	"math"
	"time"

	"sos/internal/telemetry"
)

// spx is the sparse revised simplex: the same two-phase bounded-variable
// primal algorithm as the dense tableau in simplex.go (identical column
// layout, normalization, entering/leaving rules, Bland fallback), but the
// basis inverse is represented as a sparse LU factorization plus a
// product-form eta file instead of an explicitly maintained B⁻¹A. Work
// per iteration scales with the problem's nonzeros and the factor's fill,
// not with m×n, which is what lets cold solves close 100+-subtask models.
type spx struct {
	p        *Problem
	opts     *Options // retained for rebuild-after-singularity
	eps      float64
	max      int
	hooks    *Hooks
	deadline time.Time

	tel       *telemetry.Collector
	telWorker int

	m       int
	nStruct int
	nTot    int

	// CSC over all internal columns: structural (sign-normalized), slacks,
	// then artificials, mirroring the dense kernel's layout.
	ap []int32
	ai []int32
	ax []float64

	lb, ub []float64
	cost   []float64 // current phase objective, per internal column
	isArt  []bool
	rhs    []float64 // ≤-normalized right-hand side

	basicVar []int
	rowOf    []int
	status   []varStatus
	xB       []float64

	lu     luFactor
	etas   []etaCol
	etaNnz int

	// Dense per-iteration work vectors.
	y  []float64 // duals (BTRAN image)
	w  []float64 // entering column's FTRAN image
	d  []float64 // reduced costs, recomputed by price each iteration
	t1 []float64 // triangular-solve scratch
	t2 []float64 // rhs/aggregation scratch

	obj    float64
	iters  int
	bland  bool
	stall  int
	broken bool // singular refactorization; caller restarts from scratch
}

// spxRefactorEvery bounds the eta file: after this many basis changes the
// factorization is rebuilt and xB recomputed from scratch, capping both
// the per-solve drift (resolve.go's refactorEvery idea applied inside one
// solve) and the FTRAN/BTRAN cost of a long eta chain.
const spxRefactorEvery = 64

// deadlineStride amortizes the wall-clock poll in the iteration loop.
const deadlineStride = 16

func newSpx(p *Problem, opts *Options) *spx {
	s := &spx{
		p:        p,
		opts:     opts,
		eps:      opts.eps(),
		max:      opts.maxIters(p),
		hooks:    opts.hooks(),
		deadline: opts.deadline(),
	}
	if opts != nil {
		s.tel = opts.Telemetry
		s.telWorker = opts.TelemetryWorker
	}
	s.build(opts)
	return s
}

// build assembles the internal columns in the dense kernel's layout and
// initial basis: structural nonbasics at their lower bound, a slack basic
// where its implied value is feasible, an artificial otherwise.
func (s *spx) build(opts *Options) {
	p := s.p
	v := p.columns()
	s.m = v.m
	s.nStruct = v.n

	lbs := make([]float64, 0, s.nStruct+v.nSlack+s.m)
	ubs := make([]float64, 0, s.nStruct+v.nSlack+s.m)
	for j, c := range p.cols {
		lb, ub := c.Lb, c.Ub
		if opts != nil && opts.BoundOverride != nil {
			if b, ok := opts.BoundOverride[ColID(j)]; ok {
				lb, ub = b[0], b[1]
			}
		}
		lbs = append(lbs, lb)
		ubs = append(ubs, ub)
	}
	for i := 0; i < v.nSlack; i++ {
		lbs = append(lbs, 0)
		ubs = append(ubs, math.Inf(1))
	}

	s.rhs = make([]float64, s.m)
	for i := range p.rows {
		s.rhs[i] = v.sign[i] * p.rows[i].Rhs
	}

	// Residual per row with structural at lb and slacks at 0 decides which
	// rows need artificials; the artificial's coefficient sign makes its
	// starting value |residual| ≥ 0.
	res := make([]float64, s.m)
	copy(res, s.rhs)
	for j := 0; j < s.nStruct; j++ {
		if x := lbs[j]; x != 0 {
			ri, ax := v.col(j)
			for t, i := range ri {
				res[i] -= ax[t] * x
			}
		}
	}
	s.basicVar = make([]int, s.m)
	var artRows []int
	for i := 0; i < s.m; i++ {
		if v.slackOf[i] >= 0 && res[i] >= 0 {
			s.basicVar[i] = s.nStruct + int(v.slackOf[i])
		} else {
			s.basicVar[i] = -1
			artRows = append(artRows, i)
		}
	}

	s.nTot = s.nStruct + v.nSlack + len(artRows)
	s.isArt = make([]bool, s.nTot)

	// Assemble the combined CSC: structural columns are copied from the
	// shared view; slack and artificial columns are single units.
	nnz := len(v.ax) + v.nSlack + len(artRows)
	s.ap = make([]int32, 0, s.nTot+1)
	s.ai = make([]int32, 0, nnz)
	s.ax = make([]float64, 0, nnz)
	s.ap = append(s.ap, 0)
	s.ai = append(s.ai, v.ri...)
	s.ax = append(s.ax, v.ax...)
	for j := 0; j < s.nStruct; j++ {
		s.ap = append(s.ap, v.ptr[j+1])
	}
	for i := 0; i < s.m; i++ {
		if v.slackOf[i] < 0 {
			continue
		}
		s.ai = append(s.ai, int32(i))
		s.ax = append(s.ax, 1)
		s.ap = append(s.ap, int32(len(s.ai)))
	}
	for _, i := range artRows {
		col := len(s.ap) - 1
		s.isArt[col] = true
		coef := 1.0
		if res[i] < 0 {
			coef = -1
		}
		s.ai = append(s.ai, int32(i))
		s.ax = append(s.ax, coef)
		s.ap = append(s.ap, int32(len(s.ai)))
		lbs = append(lbs, 0)
		ubs = append(ubs, math.Inf(1))
		s.basicVar[i] = col
	}
	s.lb, s.ub = lbs, ubs

	s.status = make([]varStatus, s.nTot)
	s.rowOf = make([]int, s.nTot)
	for j := range s.rowOf {
		s.rowOf[j] = -1
	}
	for i, bv := range s.basicVar {
		s.status[bv] = basic
		s.rowOf[bv] = i
	}

	s.xB = make([]float64, s.m)
	s.y = make([]float64, s.m)
	s.w = make([]float64, s.m)
	s.d = make([]float64, s.nTot)
	s.t1 = make([]float64, s.m)
	s.t2 = make([]float64, s.m)
	s.cost = make([]float64, s.nTot)
}

// colOf returns internal column j's sparse entries.
func (s *spx) colOf(j int) ([]int32, []float64) {
	lo, hi := s.ap[j], s.ap[j+1]
	return s.ai[lo:hi], s.ax[lo:hi]
}

// value returns the current value of internal column j.
func (s *spx) value(j int) float64 {
	switch s.status[j] {
	case atLower:
		return s.lb[j]
	case atUpper:
		return s.ub[j]
	default:
		if r := s.rowOf[j]; r >= 0 {
			return s.xB[r]
		}
		return 0
	}
}

// refactorize rebuilds the LU factor from the current basis, clears the
// eta file, and recomputes xB = B⁻¹(b − N·x_N) from scratch (killing the
// drift the incremental updates accumulate). Reports false on a singular
// basis.
func (s *spx) refactorize() bool {
	pivots := len(s.etas)
	ok := s.lu.factorize(s.m, func(k int) ([]int32, []float64) {
		return s.colOf(s.basicVar[k])
	})
	if !ok {
		s.broken = true
		return false
	}
	s.etas = s.etas[:0]
	s.etaNnz = 0
	r := s.t2
	copy(r, s.rhs)
	for j := 0; j < s.nTot; j++ {
		if s.status[j] == basic {
			continue
		}
		if x := s.value(j); x != 0 {
			ri, ax := s.colOf(j)
			for t, i := range ri {
				r[i] -= ax[t] * x
			}
		}
	}
	copy(s.xB, r)
	s.lu.ftran(s.xB, s.t1)
	s.recomputeObj()
	if s.tel != nil {
		s.tel.Inc(telemetry.CtrLPRefactors)
		s.tel.Emit(telemetry.EvLPRefactor, s.telWorker, float64(pivots), "")
	}
	return true
}

func (s *spx) recomputeObj() {
	s.obj = 0
	for j := 0; j < s.nTot; j++ {
		if c := s.cost[j]; c != 0 {
			s.obj += c * s.value(j)
		}
	}
}

// ftranCol computes w = B⁻¹·a_j into s.w.
func (s *spx) ftranCol(j int) {
	for i := range s.w {
		s.w[i] = 0
	}
	ri, ax := s.colOf(j)
	for t, i := range ri {
		s.w[i] = ax[t]
	}
	s.lu.ftran(s.w, s.t1)
	ftranEtas(s.etas, s.w)
}

// btranRow computes y = B⁻ᵀ·c into out, where c is given per basis
// position in out.
func (s *spx) btranRow(out []float64) {
	btranEtas(s.etas, out)
	s.lu.btran(out, s.t1)
}

// price recomputes the full reduced-cost vector d = c − yᵀA for the
// current basis and phase objective. One BTRAN plus one pass over the
// nonzeros.
func (s *spx) price() {
	for i := 0; i < s.m; i++ {
		s.y[i] = s.cost[s.basicVar[i]]
	}
	s.btranRow(s.y)
	for j := 0; j < s.nTot; j++ {
		if s.status[j] == basic {
			s.d[j] = 0
			continue
		}
		dj := s.cost[j]
		ri, ax := s.colOf(j)
		for t, i := range ri {
			dj -= s.y[i] * ax[t]
		}
		s.d[j] = dj
	}
}

// setPhaseObjective installs the phase cost vector and refreshes the
// objective value, mirroring the dense kernel.
func (s *spx) setPhaseObjective(phase1 bool) {
	for j := 0; j < s.nTot; j++ {
		s.cost[j] = 0
	}
	if phase1 {
		for j := 0; j < s.nTot; j++ {
			if s.isArt[j] {
				s.cost[j] = 1
			}
		}
	} else {
		for j := 0; j < s.nStruct; j++ {
			s.cost[j] = s.p.cols[j].Obj
		}
	}
	s.recomputeObj()
	s.bland = false
	s.stall = 0
}

// run executes phase 1 (if artificials exist) then phase 2. A singular
// refactorization mid-solve restarts the whole solve once from a fresh
// initial basis; a second failure degrades to IterLimit, which every
// caller already treats as "bound untrusted".
func (s *spx) run() *Solution {
	st, ok := s.runOnce()
	if !ok {
		s.rebuild()
		if st, ok = s.runOnce(); !ok {
			st = IterLimit
		}
	}
	return s.finish(st)
}

// rebuild resets to the initial basis after numerical failure, keeping
// the iteration count so the overall budget still holds.
func (s *spx) rebuild() {
	iters := s.iters
	s.build(s.opts)
	s.iters = iters
	s.broken = false
}

func (s *spx) runOnce() (Status, bool) {
	if !s.refactorize() {
		return IterLimit, false
	}
	anyArt := false
	for _, a := range s.isArt {
		if a {
			anyArt = true
			break
		}
	}
	if anyArt {
		s.setPhaseObjective(true)
		st := s.iterate(true)
		if s.broken {
			return IterLimit, false
		}
		if st == IterLimit {
			return IterLimit, true
		}
		if s.obj > 1e-6 {
			return Infeasible, true
		}
		s.retireArtificials()
		if s.broken {
			return IterLimit, false
		}
	}
	s.setPhaseObjective(false)
	st := s.iterate(false)
	if s.broken {
		return IterLimit, false
	}
	return st, true
}

// retireArtificials pins artificials at zero and pivots basic ones out
// where a usable pivot exists, mirroring the dense kernel. The pivot row
// needed for the scan is e_rᵀB⁻¹A, obtained with one BTRAN per affected
// row.
func (s *spx) retireArtificials() {
	for j := 0; j < s.nTot; j++ {
		if s.isArt[j] {
			s.ub[j] = 0
		}
	}
	for i := 0; i < s.m; i++ {
		bv := s.basicVar[i]
		if !s.isArt[bv] {
			continue
		}
		rho := s.y
		for k := range rho {
			rho[k] = 0
		}
		rho[i] = 1
		s.btranRow(rho)
		pivot := -1
		for j := 0; j < s.nTot; j++ {
			if s.isArt[j] || s.status[j] == basic {
				continue
			}
			a := 0.0
			ri, ax := s.colOf(j)
			for t, r := range ri {
				a += rho[r] * ax[t]
			}
			if math.Abs(a) > 1e-7 {
				pivot = j
				break
			}
		}
		if pivot < 0 {
			continue
		}
		// Degenerate pivot: the artificial sits at 0, so the entering
		// column keeps its current bound value and feasibility holds.
		s.ftranCol(pivot)
		s.status[bv] = atLower
		s.installBasis(i, pivot, s.value(pivot))
		if s.broken {
			return
		}
	}
}

// iterate runs primal simplex iterations for the current phase, matching
// the dense kernel's entering/leaving rules exactly.
func (s *spx) iterate(phase1 bool) Status {
	for {
		if h := s.hooks; h != nil && h.OnPivot != nil {
			h.OnPivot(s.iters)
		}
		if s.iters >= s.max {
			return IterLimit
		}
		if !s.deadline.IsZero() && s.iters%deadlineStride == 0 && time.Now().After(s.deadline) {
			return IterLimit
		}
		s.iters++

		s.price()
		j, dir := s.chooseEntering(phase1)
		if j < 0 {
			return Optimal
		}

		s.ftranCol(j)
		leave, t, hitUpper := s.ratioTest(j, dir)
		if leave == -2 {
			if phase1 {
				return IterLimit // numerical trouble; phase 1 is bounded below
			}
			return Unbounded
		}

		prevObj := s.obj
		if leave == -1 {
			s.applyStep(j, dir, t)
			if s.status[j] == atLower {
				s.status[j] = atUpper
			} else {
				s.status[j] = atLower
			}
		} else {
			s.applyStep(j, dir, t)
			newVal := s.boundValue(j, dir, t)
			lv := s.basicVar[leave]
			if hitUpper {
				s.status[lv] = atUpper
			} else {
				s.status[lv] = atLower
			}
			s.installBasis(leave, j, newVal)
			if s.broken {
				return IterLimit
			}
		}
		if s.obj < prevObj-s.eps {
			s.stall = 0
		} else {
			s.stall++
			if s.stall > 2*(s.m+s.nTot) {
				s.bland = true
			}
		}
	}
}

// chooseEntering mirrors the dense rule: Dantzig pricing with Bland's
// first-eligible fallback once the objective stalls.
func (s *spx) chooseEntering(phase1 bool) (int, float64) {
	bestJ, bestScore, bestDir := -1, s.eps, 0.0
	for j := 0; j < s.nTot; j++ {
		if s.status[j] == basic {
			continue
		}
		if s.isArt[j] && !phase1 {
			continue
		}
		if s.lb[j] == s.ub[j] {
			continue
		}
		var score, dir float64
		switch s.status[j] {
		case atLower:
			if s.d[j] < -s.eps {
				score, dir = -s.d[j], 1
			}
		case atUpper:
			if s.d[j] > s.eps {
				score, dir = s.d[j], -1
			}
		}
		if dir == 0 {
			continue
		}
		if s.bland {
			return j, dir
		}
		if score > bestScore {
			bestJ, bestScore, bestDir = j, score, dir
		}
	}
	return bestJ, bestDir
}

// ratioTest computes how far the entering column j can move in direction
// dir, using its FTRAN image in s.w. Same contract as the dense version:
// leave -1 is a bound flip, -2 unbounded.
func (s *spx) ratioTest(j int, dir float64) (int, float64, bool) {
	t := math.Inf(1)
	if !math.IsInf(s.ub[j], 1) {
		t = s.ub[j] - s.lb[j]
	}
	leave := -1
	hitUpper := false
	for i := 0; i < s.m; i++ {
		y := s.w[i]
		if y == 0 {
			continue
		}
		delta := dir * y
		bv := s.basicVar[i]
		var limit float64
		var upper bool
		if delta > s.eps {
			limit = (s.xB[i] - s.lb[bv]) / delta
			upper = false
		} else if delta < -s.eps {
			if math.IsInf(s.ub[bv], 1) {
				continue
			}
			limit = (s.ub[bv] - s.xB[i]) / (-delta)
			upper = true
		} else {
			continue
		}
		if limit < -s.eps {
			limit = 0
		}
		if limit < t-s.eps ||
			(limit < t+s.eps && leave >= 0 && s.betterLeaving(i, leave)) {
			t = limit
			leave = i
			hitUpper = upper
		}
	}
	if math.IsInf(t, 1) {
		return -2, 0, false
	}
	if t < 0 {
		t = 0
	}
	return leave, t, hitUpper
}

// betterLeaving breaks ratio-test ties like the dense kernel: larger
// pivot magnitude, then smaller basic index (Bland-compatible).
func (s *spx) betterLeaving(cand, cur int) bool {
	pc, pu := math.Abs(s.w[cand]), math.Abs(s.w[cur])
	if s.bland {
		return s.basicVar[cand] < s.basicVar[cur]
	}
	if pc != pu {
		return pc > pu
	}
	return s.basicVar[cand] < s.basicVar[cur]
}

// applyStep moves nonbasic j by t in direction dir using its FTRAN image.
func (s *spx) applyStep(j int, dir, t float64) {
	if t == 0 {
		return
	}
	for i := 0; i < s.m; i++ {
		if y := s.w[i]; y != 0 {
			s.xB[i] -= t * dir * y
		}
	}
	s.obj += s.d[j] * dir * t
}

// boundValue returns the value of column j after moving t from its
// current bound in direction dir.
func (s *spx) boundValue(j int, dir, t float64) float64 {
	if s.status[j] == atLower {
		return s.lb[j] + dir*t
	}
	return s.ub[j] + dir*t
}

// installBasis makes column j basic at position r with value newVal,
// capturing the eta update (s.w must hold B⁻¹a_j) and refactorizing when
// the eta file is full.
func (s *spx) installBasis(r, j int, newVal float64) {
	e := captureEta(r, s.w)
	s.etas = append(s.etas, e)
	s.etaNnz += len(e.ind) + 1
	if old := s.basicVar[r]; old != j {
		s.rowOf[old] = -1
	}
	s.status[j] = basic
	s.basicVar[r] = j
	s.rowOf[j] = r
	s.xB[r] = newVal
	if len(s.etas) >= spxRefactorEvery {
		s.refactorize()
	}
}

// finish extracts the structural solution.
func (s *spx) finish(st Status) *Solution {
	sol := &Solution{}
	s.finishInto(st, sol)
	return sol
}

// finishInto mirrors the dense kernel's extraction, reusing the caller's
// slices (the sparse warm-start Resolver path depends on this).
func (s *spx) finishInto(st Status, sol *Solution) {
	sol.Status = st
	sol.Iters = s.iters
	sol.Obj = 0
	if cap(sol.X) < s.nStruct {
		sol.X = make([]float64, s.nStruct)
	}
	sol.X = sol.X[:s.nStruct]
	for j := 0; j < s.nStruct; j++ {
		sol.X[j] = s.value(j)
	}
	if st == Optimal || st == IterLimit {
		obj := 0.0
		for j := 0; j < s.nStruct; j++ {
			obj += s.p.cols[j].Obj * sol.X[j]
		}
		sol.Obj = obj
	}
	if st == Optimal {
		if cap(sol.ReducedCosts) < s.nStruct {
			sol.ReducedCosts = make([]float64, s.nStruct)
		}
		sol.ReducedCosts = sol.ReducedCosts[:s.nStruct]
		copy(sol.ReducedCosts, s.d[:s.nStruct])
	} else {
		sol.ReducedCosts = nil
	}
}
