// Package lp implements a dense two-phase primal simplex solver for linear
// programs with bounded variables. It plays the role of the commercial XLP
// package used by the SOS paper: the branch-and-bound MILP driver
// (internal/milp) calls it to solve the LP relaxation at every node.
//
// Problems have the form
//
//	minimize    c·x
//	subject to  aᵢ·x  (≤ | = | ≥)  bᵢ      for each row i
//	            lbⱼ ≤ xⱼ ≤ ubⱼ             for each column j
//
// Lower bounds must be finite; upper bounds may be +Inf. Variable bounds
// are handled natively by the simplex (nonbasic-at-lower / nonbasic-at-
// upper), so binary variables cost no extra rows.
package lp

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"sos/internal/telemetry"
)

// Sense is the direction of a row constraint.
type Sense int

// Row senses.
const (
	Le Sense = iota // aᵢ·x ≤ bᵢ
	Ge              // aᵢ·x ≥ bᵢ
	Eq              // aᵢ·x = bᵢ
)

func (s Sense) String() string {
	switch s {
	case Le:
		return "<="
	case Ge:
		return ">="
	case Eq:
		return "="
	}
	return "?"
}

// ColID identifies a column (variable) of a Problem.
type ColID int

// Term is one coefficient of a row: Coef * x[Col].
type Term struct {
	Col  ColID
	Coef float64
}

// Col is a structural variable.
type Col struct {
	Name string
	Lb   float64
	Ub   float64
	Obj  float64 // objective coefficient (minimized)
}

// Row is one linear constraint.
type Row struct {
	Name  string
	Sense Sense
	Rhs   float64
	Terms []Term
}

// Problem is a mutable LP under construction. It is not safe for concurrent
// mutation; Solve does not mutate the problem and may be called from
// multiple goroutines with distinct bound overrides.
type Problem struct {
	Name string
	cols []Col
	rows []Row

	// colCache holds the lazily built sparse column view (see columns.go).
	// It is invalidated by structural mutation (AddCol/AddRow) and built at
	// most once between mutations; the view itself is immutable, so clones
	// share it and concurrent solves race only on the atomic pointer.
	colCache atomic.Pointer[colView]
}

// NewProblem creates an empty problem.
func NewProblem(name string) *Problem {
	return &Problem{Name: name}
}

// AddCol adds a variable with the given bounds and objective coefficient,
// returning its ColID.
func (p *Problem) AddCol(name string, lb, ub, obj float64) ColID {
	id := ColID(len(p.cols))
	if name == "" {
		name = fmt.Sprintf("x%d", id)
	}
	p.cols = append(p.cols, Col{Name: name, Lb: lb, Ub: ub, Obj: obj})
	p.colCache.Store(nil)
	return id
}

// SetObj replaces the objective coefficient of a column.
func (p *Problem) SetObj(c ColID, obj float64) { p.cols[c].Obj = obj }

// SetBounds replaces the bounds of a column.
func (p *Problem) SetBounds(c ColID, lb, ub float64) {
	p.cols[c].Lb, p.cols[c].Ub = lb, ub
}

// AddRow adds a constraint. Terms with the same column are summed. Returns
// the row index.
func (p *Problem) AddRow(name string, sense Sense, rhs float64, terms ...Term) int {
	merged := mergeTerms(terms)
	p.rows = append(p.rows, Row{Name: name, Sense: sense, Rhs: rhs, Terms: merged})
	p.colCache.Store(nil)
	return len(p.rows) - 1
}

func mergeTerms(terms []Term) []Term {
	if len(terms) <= 1 {
		return append([]Term(nil), terms...)
	}
	sum := make(map[ColID]float64, len(terms))
	order := make([]ColID, 0, len(terms))
	for _, t := range terms {
		if _, ok := sum[t.Col]; !ok {
			order = append(order, t.Col)
		}
		sum[t.Col] += t.Coef
	}
	out := make([]Term, 0, len(order))
	for _, c := range order {
		if sum[c] != 0 {
			out = append(out, Term{Col: c, Coef: sum[c]})
		}
	}
	return out
}

// SetRowRhs replaces the right-hand side of row i, leaving its sense and
// coefficients untouched. This is the mutation an incremental model layer
// needs to retarget a cap or deadline row without rebuilding the problem.
func (p *Problem) SetRowRhs(i int, rhs float64) { p.rows[i].Rhs = rhs }

// Clone returns an independent copy of the problem: the column and row
// headers are owned by the clone, so bound, objective, and Rhs mutations on
// either side are invisible to the other. The Term slices are shared —
// they are immutable after AddRow (mergeTerms always allocates) — which
// keeps a clone O(rows+cols) instead of O(nonzeros). Solving never mutates
// a Problem, so distinct clones may be solved concurrently.
func (p *Problem) Clone() *Problem {
	q := &Problem{
		Name: p.Name,
		cols: append([]Col(nil), p.cols...),
		rows: append([]Row(nil), p.rows...),
	}
	// The column view depends only on row structure (senses and
	// coefficients), which the clone shares, so the cache carries over.
	q.colCache.Store(p.colCache.Load())
	return q
}

// NumNonzeros returns the number of structural coefficients across all
// rows (the problem's nonzero count).
func (p *Problem) NumNonzeros() int {
	nnz := 0
	for i := range p.rows {
		nnz += len(p.rows[i].Terms)
	}
	return nnz
}

// NumCols returns the number of variables.
func (p *Problem) NumCols() int { return len(p.cols) }

// NumRows returns the number of constraints.
func (p *Problem) NumRows() int { return len(p.rows) }

// Col returns column metadata.
func (p *Problem) Col(c ColID) Col { return p.cols[c] }

// Row returns row metadata.
func (p *Problem) Row(i int) Row { return p.rows[i] }

// Validate checks solvability preconditions: finite lower bounds, lb ≤ ub,
// and in-range term columns.
func (p *Problem) Validate() error {
	for j, c := range p.cols {
		if math.IsInf(c.Lb, -1) || math.IsNaN(c.Lb) {
			return fmt.Errorf("lp %s: column %s has non-finite lower bound", p.Name, c.Name)
		}
		if c.Lb > c.Ub {
			return fmt.Errorf("lp %s: column %s has lb %g > ub %g", p.Name, c.Name, c.Lb, c.Ub)
		}
		_ = j
	}
	for _, r := range p.rows {
		for _, t := range r.Terms {
			if int(t.Col) < 0 || int(t.Col) >= len(p.cols) {
				return fmt.Errorf("lp %s: row %s references unknown column %d", p.Name, r.Name, t.Col)
			}
		}
	}
	return nil
}

// Status is the outcome of a Solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
	IterLimit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	}
	return "unknown"
}

// Solution is the result of a Solve.
type Solution struct {
	Status Status
	Obj    float64
	X      []float64 // primal values, indexed by ColID
	Iters  int       // total simplex iterations across both phases

	// ReducedCosts holds the final reduced cost of each structural
	// column (indexed by ColID), populated on Optimal solves. For a
	// nonbasic column at its lower bound the reduced cost is >= 0 and is
	// the rate at which the objective worsens per unit increase;
	// symmetrically (<= 0) at an upper bound. Branch-and-bound uses them
	// for reduced-cost fixing.
	ReducedCosts []float64
}

// Hooks are failpoint injection points for fault testing. All fields are
// consulted only when non-zero, so the nil/zero value (production) costs a
// single pointer check per solve. Hooks let tests force the degraded solver
// paths — warm-start rejection, iteration-cap exits, crashes mid-pivot —
// without build tags or clock games.
type Hooks struct {
	// RejectWarm, when non-nil and returning true, makes Resolver.Solve
	// abandon the warm path for that call and rebuild cold.
	RejectWarm func() bool

	// OnPivot is called at the top of every simplex iteration (both primal
	// phases and the dual repair) with the running iteration count. It may
	// panic to simulate a solver crash mid-pivot, or block/cancel to
	// simulate a stall.
	OnPivot func(iters int)

	// ForceIterLimit, when > 0, caps every solve's iteration budget at the
	// given value, forcing IterLimit exits regardless of MaxIters.
	ForceIterLimit int
}

// Kernel selects the simplex implementation.
type Kernel int

// Kernels.
const (
	// KernelAuto picks the dense tableau below autoSparseThreshold
	// internal dimensions (rows+cols) and the sparse revised simplex
	// above it. The paper-scale models stay on the dense path, whose
	// per-pivot constant wins at those sizes; generated 100+-subtask
	// models cross over to the sparse kernel.
	KernelAuto Kernel = iota
	// KernelDense forces the dense two-phase tableau (simplex.go).
	KernelDense
	// KernelSparse forces the sparse revised simplex (sparse.go): CSC
	// columns, LU-factorized basis with product-form eta updates and
	// periodic refactorization.
	KernelSparse
)

// autoSparseThreshold is the rows+cols size at which KernelAuto switches
// from the dense tableau to the sparse revised simplex. The paper's
// largest model (Example 2, ~300 columns and ~1.6k rows) stays dense;
// generated series-parallel/fork-join models at 100+ subtasks land well
// above it.
const autoSparseThreshold = 4000

// Options tunes the solver. The zero value gives sensible defaults.
type Options struct {
	MaxIters int     // per solve; default 20000 + 50*(rows+cols)
	Eps      float64 // feasibility/optimality tolerance; default 1e-9

	// Kernel selects the simplex implementation (default KernelAuto).
	Kernel Kernel

	// Presolve enables the reduction pass (fixed-variable substitution,
	// empty/singleton-row elimination, bound tightening, redundant-row
	// removal) in front of the kernel; solutions are mapped back to the
	// full column space by the postsolve step, so callers see no
	// difference beyond speed. Off by default.
	Presolve bool

	// Deadline, when non-zero, bounds the wall-clock time of a single
	// solve: the kernel polls it every few iterations and exits with
	// IterLimit once passed. Branch and bound threads its own TimeLimit
	// through here so one oversized node relaxation cannot blow the
	// whole search budget.
	Deadline time.Time

	// BoundOverride, when non-nil, replaces the bounds of selected columns
	// for this solve only (used by branch-and-bound to branch without
	// copying the problem).
	BoundOverride map[ColID][2]float64

	// Hooks injects failpoints for fault testing; nil in production.
	Hooks *Hooks

	// Telemetry, when non-nil, receives resolve-level counters and trace
	// events (warm/cold/fallback, pivot counts). Nil costs one pointer
	// check per resolve; it is never consulted per pivot.
	Telemetry *telemetry.Collector
	// TelemetryWorker is the worker ID stamped on emitted trace events so
	// parallel searches can attribute resolves.
	TelemetryWorker int
}

func (o *Options) maxIters(p *Problem) int {
	if o != nil && o.Hooks != nil && o.Hooks.ForceIterLimit > 0 {
		return o.Hooks.ForceIterLimit
	}
	if o != nil && o.MaxIters > 0 {
		return o.MaxIters
	}
	return 20000 + 50*(len(p.rows)+len(p.cols))
}

func (o *Options) hooks() *Hooks {
	if o == nil {
		return nil
	}
	return o.Hooks
}

func (o *Options) eps() float64 {
	if o != nil && o.Eps > 0 {
		return o.Eps
	}
	return 1e-9
}

func (o *Options) deadline() time.Time {
	if o == nil {
		return time.Time{}
	}
	return o.Deadline
}

// kernelFor resolves the effective kernel for p: an explicit choice wins,
// KernelAuto switches on problem size.
func (o *Options) kernelFor(p *Problem) Kernel {
	k := KernelAuto
	if o != nil {
		k = o.Kernel
	}
	if k != KernelAuto {
		return k
	}
	if len(p.rows)+len(p.cols) >= autoSparseThreshold {
		return KernelSparse
	}
	return KernelDense
}

// Solve runs the two-phase bounded simplex and returns the solution. The
// problem itself is not modified. Options.Kernel selects the dense tableau
// or the sparse revised simplex; Options.Presolve runs the reduction pass
// first and maps the reduced solution back.
func (p *Problem) Solve(opts *Options) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p.solve(opts), nil
}

// solve dispatches a validated problem to presolve and/or a kernel.
func (p *Problem) solve(opts *Options) *Solution {
	if opts != nil && opts.Presolve {
		return presolveSolve(p, opts)
	}
	return p.kernelSolve(opts)
}

// kernelSolve runs the selected simplex implementation with no presolve.
func (p *Problem) kernelSolve(opts *Options) *Solution {
	if opts.kernelFor(p) == KernelSparse {
		return newSpx(p, opts).run()
	}
	return newSimplex(p, opts).run()
}
