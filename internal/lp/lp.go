// Package lp implements a dense two-phase primal simplex solver for linear
// programs with bounded variables. It plays the role of the commercial XLP
// package used by the SOS paper: the branch-and-bound MILP driver
// (internal/milp) calls it to solve the LP relaxation at every node.
//
// Problems have the form
//
//	minimize    c·x
//	subject to  aᵢ·x  (≤ | = | ≥)  bᵢ      for each row i
//	            lbⱼ ≤ xⱼ ≤ ubⱼ             for each column j
//
// Lower bounds must be finite; upper bounds may be +Inf. Variable bounds
// are handled natively by the simplex (nonbasic-at-lower / nonbasic-at-
// upper), so binary variables cost no extra rows.
package lp

import (
	"fmt"
	"math"

	"sos/internal/telemetry"
)

// Sense is the direction of a row constraint.
type Sense int

// Row senses.
const (
	Le Sense = iota // aᵢ·x ≤ bᵢ
	Ge              // aᵢ·x ≥ bᵢ
	Eq              // aᵢ·x = bᵢ
)

func (s Sense) String() string {
	switch s {
	case Le:
		return "<="
	case Ge:
		return ">="
	case Eq:
		return "="
	}
	return "?"
}

// ColID identifies a column (variable) of a Problem.
type ColID int

// Term is one coefficient of a row: Coef * x[Col].
type Term struct {
	Col  ColID
	Coef float64
}

// Col is a structural variable.
type Col struct {
	Name string
	Lb   float64
	Ub   float64
	Obj  float64 // objective coefficient (minimized)
}

// Row is one linear constraint.
type Row struct {
	Name  string
	Sense Sense
	Rhs   float64
	Terms []Term
}

// Problem is a mutable LP under construction. It is not safe for concurrent
// mutation; Solve does not mutate the problem and may be called from
// multiple goroutines with distinct bound overrides.
type Problem struct {
	Name string
	cols []Col
	rows []Row
}

// NewProblem creates an empty problem.
func NewProblem(name string) *Problem {
	return &Problem{Name: name}
}

// AddCol adds a variable with the given bounds and objective coefficient,
// returning its ColID.
func (p *Problem) AddCol(name string, lb, ub, obj float64) ColID {
	id := ColID(len(p.cols))
	if name == "" {
		name = fmt.Sprintf("x%d", id)
	}
	p.cols = append(p.cols, Col{Name: name, Lb: lb, Ub: ub, Obj: obj})
	return id
}

// SetObj replaces the objective coefficient of a column.
func (p *Problem) SetObj(c ColID, obj float64) { p.cols[c].Obj = obj }

// SetBounds replaces the bounds of a column.
func (p *Problem) SetBounds(c ColID, lb, ub float64) {
	p.cols[c].Lb, p.cols[c].Ub = lb, ub
}

// AddRow adds a constraint. Terms with the same column are summed. Returns
// the row index.
func (p *Problem) AddRow(name string, sense Sense, rhs float64, terms ...Term) int {
	merged := mergeTerms(terms)
	p.rows = append(p.rows, Row{Name: name, Sense: sense, Rhs: rhs, Terms: merged})
	return len(p.rows) - 1
}

func mergeTerms(terms []Term) []Term {
	if len(terms) <= 1 {
		return append([]Term(nil), terms...)
	}
	sum := make(map[ColID]float64, len(terms))
	order := make([]ColID, 0, len(terms))
	for _, t := range terms {
		if _, ok := sum[t.Col]; !ok {
			order = append(order, t.Col)
		}
		sum[t.Col] += t.Coef
	}
	out := make([]Term, 0, len(order))
	for _, c := range order {
		if sum[c] != 0 {
			out = append(out, Term{Col: c, Coef: sum[c]})
		}
	}
	return out
}

// SetRowRhs replaces the right-hand side of row i, leaving its sense and
// coefficients untouched. This is the mutation an incremental model layer
// needs to retarget a cap or deadline row without rebuilding the problem.
func (p *Problem) SetRowRhs(i int, rhs float64) { p.rows[i].Rhs = rhs }

// Clone returns an independent copy of the problem: the column and row
// headers are owned by the clone, so bound, objective, and Rhs mutations on
// either side are invisible to the other. The Term slices are shared —
// they are immutable after AddRow (mergeTerms always allocates) — which
// keeps a clone O(rows+cols) instead of O(nonzeros). Solving never mutates
// a Problem, so distinct clones may be solved concurrently.
func (p *Problem) Clone() *Problem {
	return &Problem{
		Name: p.Name,
		cols: append([]Col(nil), p.cols...),
		rows: append([]Row(nil), p.rows...),
	}
}

// NumCols returns the number of variables.
func (p *Problem) NumCols() int { return len(p.cols) }

// NumRows returns the number of constraints.
func (p *Problem) NumRows() int { return len(p.rows) }

// Col returns column metadata.
func (p *Problem) Col(c ColID) Col { return p.cols[c] }

// Row returns row metadata.
func (p *Problem) Row(i int) Row { return p.rows[i] }

// Validate checks solvability preconditions: finite lower bounds, lb ≤ ub,
// and in-range term columns.
func (p *Problem) Validate() error {
	for j, c := range p.cols {
		if math.IsInf(c.Lb, -1) || math.IsNaN(c.Lb) {
			return fmt.Errorf("lp %s: column %s has non-finite lower bound", p.Name, c.Name)
		}
		if c.Lb > c.Ub {
			return fmt.Errorf("lp %s: column %s has lb %g > ub %g", p.Name, c.Name, c.Lb, c.Ub)
		}
		_ = j
	}
	for _, r := range p.rows {
		for _, t := range r.Terms {
			if int(t.Col) < 0 || int(t.Col) >= len(p.cols) {
				return fmt.Errorf("lp %s: row %s references unknown column %d", p.Name, r.Name, t.Col)
			}
		}
	}
	return nil
}

// Status is the outcome of a Solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
	IterLimit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	}
	return "unknown"
}

// Solution is the result of a Solve.
type Solution struct {
	Status Status
	Obj    float64
	X      []float64 // primal values, indexed by ColID
	Iters  int       // total simplex iterations across both phases

	// ReducedCosts holds the final reduced cost of each structural
	// column (indexed by ColID), populated on Optimal solves. For a
	// nonbasic column at its lower bound the reduced cost is >= 0 and is
	// the rate at which the objective worsens per unit increase;
	// symmetrically (<= 0) at an upper bound. Branch-and-bound uses them
	// for reduced-cost fixing.
	ReducedCosts []float64
}

// Hooks are failpoint injection points for fault testing. All fields are
// consulted only when non-zero, so the nil/zero value (production) costs a
// single pointer check per solve. Hooks let tests force the degraded solver
// paths — warm-start rejection, iteration-cap exits, crashes mid-pivot —
// without build tags or clock games.
type Hooks struct {
	// RejectWarm, when non-nil and returning true, makes Resolver.Solve
	// abandon the warm path for that call and rebuild cold.
	RejectWarm func() bool

	// OnPivot is called at the top of every simplex iteration (both primal
	// phases and the dual repair) with the running iteration count. It may
	// panic to simulate a solver crash mid-pivot, or block/cancel to
	// simulate a stall.
	OnPivot func(iters int)

	// ForceIterLimit, when > 0, caps every solve's iteration budget at the
	// given value, forcing IterLimit exits regardless of MaxIters.
	ForceIterLimit int
}

// Options tunes the solver. The zero value gives sensible defaults.
type Options struct {
	MaxIters int     // per solve; default 20000 + 50*(rows+cols)
	Eps      float64 // feasibility/optimality tolerance; default 1e-9

	// BoundOverride, when non-nil, replaces the bounds of selected columns
	// for this solve only (used by branch-and-bound to branch without
	// copying the problem).
	BoundOverride map[ColID][2]float64

	// Hooks injects failpoints for fault testing; nil in production.
	Hooks *Hooks

	// Telemetry, when non-nil, receives resolve-level counters and trace
	// events (warm/cold/fallback, pivot counts). Nil costs one pointer
	// check per resolve; it is never consulted per pivot.
	Telemetry *telemetry.Collector
	// TelemetryWorker is the worker ID stamped on emitted trace events so
	// parallel searches can attribute resolves.
	TelemetryWorker int
}

func (o *Options) maxIters(p *Problem) int {
	if o != nil && o.Hooks != nil && o.Hooks.ForceIterLimit > 0 {
		return o.Hooks.ForceIterLimit
	}
	if o != nil && o.MaxIters > 0 {
		return o.MaxIters
	}
	return 20000 + 50*(len(p.rows)+len(p.cols))
}

func (o *Options) hooks() *Hooks {
	if o == nil {
		return nil
	}
	return o.Hooks
}

func (o *Options) eps() float64 {
	if o != nil && o.Eps > 0 {
		return o.Eps
	}
	return 1e-9
}

// Solve runs the two-phase bounded simplex and returns the solution. The
// problem itself is not modified.
func (p *Problem) Solve(opts *Options) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	s := newSimplex(p, opts)
	return s.run(), nil
}
