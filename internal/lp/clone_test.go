package lp

import (
	"math"
	"sync"
	"testing"
)

// cloneFixture builds min x+y s.t. x+y >= 1, x+2y <= cap, 0 <= x,y <= 3.
func cloneFixture(capRhs float64) (*Problem, int) {
	p := NewProblem("clone-fixture")
	x := p.AddCol("x", 0, 3, 1)
	y := p.AddCol("y", 0, 3, 1)
	p.AddRow("lb", Ge, 1, Term{Col: x, Coef: 1}, Term{Col: y, Coef: 1})
	capRow := p.AddRow("cap", Le, capRhs, Term{Col: x, Coef: 1}, Term{Col: y, Coef: 2})
	return p, capRow
}

// TestCloneIsIndependent checks that bound, objective, and Rhs mutations on
// a clone leave the original untouched (and vice versa).
func TestCloneIsIndependent(t *testing.T) {
	p, capRow := cloneFixture(10)
	q := p.Clone()
	q.SetRowRhs(capRow, 2)
	q.SetBounds(0, 1, 2)
	q.SetObj(1, 5)
	if got := p.Row(capRow).Rhs; got != 10 {
		t.Errorf("original Rhs mutated: %g", got)
	}
	if c := p.Col(0); c.Lb != 0 || c.Ub != 3 {
		t.Errorf("original bounds mutated: [%g,%g]", c.Lb, c.Ub)
	}
	if c := p.Col(1); c.Obj != 1 {
		t.Errorf("original objective mutated: %g", c.Obj)
	}
	if got := q.Row(capRow).Rhs; got != 2 {
		t.Errorf("clone Rhs = %g, want 2", got)
	}
	p.SetRowRhs(capRow, 7)
	if got := q.Row(capRow).Rhs; got != 2 {
		t.Errorf("clone saw original's mutation: %g", got)
	}
}

// TestCloneSetRowRhsEqualsFreshBuild checks that a clone with a retargeted
// Rhs solves identically to a problem built with that Rhs from scratch.
func TestCloneSetRowRhsEqualsFreshBuild(t *testing.T) {
	base, capRow := cloneFixture(10)
	for _, rhs := range []float64{1, 2, 4} {
		clone := base.Clone()
		clone.SetRowRhs(capRow, rhs)
		fresh, _ := cloneFixture(rhs)
		cs, err := clone.Solve(nil)
		if err != nil {
			t.Fatal(err)
		}
		fs, err := fresh.Solve(nil)
		if err != nil {
			t.Fatal(err)
		}
		if cs.Status != fs.Status || math.Abs(cs.Obj-fs.Obj) > 1e-9 {
			t.Errorf("rhs %g: clone (%v, %g) vs fresh (%v, %g)", rhs, cs.Status, cs.Obj, fs.Status, fs.Obj)
		}
	}
}

// TestCloneConcurrentSolves solves many clones with distinct Rhs values in
// parallel (meaningful under -race: clones must share no mutable state).
func TestCloneConcurrentSolves(t *testing.T) {
	base, capRow := cloneFixture(10)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		rhs := 1 + float64(i)
		clone := base.Clone()
		clone.SetRowRhs(capRow, rhs)
		wg.Add(1)
		go func() {
			defer wg.Done()
			sol, err := clone.Solve(nil)
			if err != nil {
				errs <- err
				return
			}
			if sol.Status != Optimal || math.Abs(sol.Obj-1) > 1e-9 {
				errs <- errFromSolve(sol.Status, sol.Obj)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

type solveErr struct {
	status Status
	obj    float64
}

func (e solveErr) Error() string { return "unexpected solve: " + e.status.String() }

func errFromSolve(s Status, obj float64) error { return solveErr{s, obj} }
