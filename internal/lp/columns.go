package lp

// colView is an immutable compressed-sparse-column snapshot of a Problem's
// structural coefficients in ≤-normalized form: every coefficient of a ≥
// row is negated, matching the equality-form convention both simplex
// kernels build (simplex.go's dense rows and sparse.go's CSC columns).
// Once built it is shared by clones and concurrent solves; any structural
// mutation (AddCol/AddRow) drops the cache.
type colView struct {
	m, n int // rows, structural columns

	ptr []int32   // n+1 column offsets into ri/ax
	ri  []int32   // row index per entry
	ax  []float64 // sign-normalized coefficient per entry

	sign    []float64 // per row: -1 for Ge rows, +1 otherwise
	slackOf []int32   // per row: dense slack column slot (0..nSlack-1), -1 for Eq
	nSlack  int
}

// columns returns the problem's sparse column view, building it on first
// use. Solve is documented concurrent-safe, so the build races benignly:
// both goroutines construct identical views and one wins the Store.
func (p *Problem) columns() *colView {
	if v := p.colCache.Load(); v != nil {
		return v
	}
	v := buildColView(p)
	p.colCache.Store(v)
	return v
}

// PrecomputeColumns builds the sparse column view eagerly so later solves
// (and every clone, which shares the cache) skip the row-to-column
// transpose. The model builder calls this once per Build.
func (p *Problem) PrecomputeColumns() { p.columns() }

func buildColView(p *Problem) *colView {
	m, n := len(p.rows), len(p.cols)
	v := &colView{
		m:       m,
		n:       n,
		ptr:     make([]int32, n+1),
		sign:    make([]float64, m),
		slackOf: make([]int32, m),
	}
	nnz := 0
	for i := range p.rows {
		r := &p.rows[i]
		v.sign[i] = 1
		if r.Sense == Ge {
			v.sign[i] = -1
		}
		v.slackOf[i] = -1
		if r.Sense != Eq {
			v.slackOf[i] = int32(v.nSlack)
			v.nSlack++
		}
		nnz += len(r.Terms)
	}
	// Count per-column entries, then fill with a second pass. mergeTerms
	// guarantees each row references a column at most once.
	for i := range p.rows {
		for _, t := range p.rows[i].Terms {
			v.ptr[t.Col+1]++
		}
	}
	for j := 0; j < n; j++ {
		v.ptr[j+1] += v.ptr[j]
	}
	v.ri = make([]int32, nnz)
	v.ax = make([]float64, nnz)
	next := make([]int32, n)
	copy(next, v.ptr[:n])
	for i := range p.rows {
		s := v.sign[i]
		for _, t := range p.rows[i].Terms {
			k := next[t.Col]
			next[t.Col] = k + 1
			v.ri[k] = int32(i)
			v.ax[k] = s * t.Coef
		}
	}
	return v
}

// col returns the sign-normalized sparse entries of structural column j.
func (v *colView) col(j int) ([]int32, []float64) {
	lo, hi := v.ptr[j], v.ptr[j+1]
	return v.ri[lo:hi], v.ax[lo:hi]
}
