package lp

import (
	"math"
	"math/rand"
	"testing"
)

// randomProblem builds a random bounded LP shaped like branch-and-bound
// relaxations: binary-ish columns, a few continuous ones, Le/Ge/Eq rows.
func randomProblem(rng *rand.Rand) (*Problem, []ColID) {
	n := 4 + rng.Intn(10)
	p := NewProblem("rnd")
	var bins []ColID
	for j := 0; j < n; j++ {
		if rng.Intn(4) == 0 {
			p.AddCol("", 0, 2+rng.Float64()*3, float64(rng.Intn(9)-4))
		} else {
			bins = append(bins, p.AddCol("", 0, 1, float64(rng.Intn(21)-10)))
		}
	}
	nrows := 1 + rng.Intn(4)
	for i := 0; i < nrows; i++ {
		terms := make([]Term, 0, n)
		total := 0.0
		for j := 0; j < n; j++ {
			c := float64(rng.Intn(7) - 2)
			if c != 0 {
				terms = append(terms, Term{Col: ColID(j), Coef: c})
			}
			if c > 0 {
				total += c
			}
		}
		if len(terms) == 0 {
			continue
		}
		switch rng.Intn(5) {
		case 0:
			p.AddRow("", Ge, total*0.2*rng.Float64(), terms...)
		case 1:
			p.AddRow("", Eq, total*0.4*rng.Float64(), terms...)
		default:
			p.AddRow("", Le, total*(0.3+0.5*rng.Float64()), terms...)
		}
	}
	return p, bins
}

// mutateBounds evolves a bound set the way branch and bound does: one or
// two binaries get fixed, re-fixed, or released per step, so consecutive
// solves differ by a small delta and the resolver's warm path is
// exercised (wholesale re-randomization would exceed its delta gate and
// turn every step into a cold rebuild).
func mutateBounds(rng *rand.Rand, bins []ColID, cur map[ColID][2]float64) map[ColID][2]float64 {
	b := map[ColID][2]float64{}
	for c, v := range cur {
		b[c] = v
	}
	for n := 1 + rng.Intn(2); n > 0; n-- {
		c := bins[rng.Intn(len(bins))]
		switch rng.Intn(3) {
		case 0:
			b[c] = [2]float64{0, 0}
		case 1:
			b[c] = [2]float64{1, 1}
		default:
			delete(b, c)
		}
	}
	return b
}

// TestResolverMatchesCold drives a Resolver through long random bound
// sequences and cross-checks every re-solve against a fresh cold solve.
func TestResolverMatchesCold(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		p, bins := randomProblem(rng)
		if len(bins) == 0 {
			continue
		}
		r, err := p.NewResolver(nil)
		if err != nil {
			t.Fatal(err)
		}
		bounds := map[ColID][2]float64{}
		warmEligible := 0 // steps whose predecessor left a reusable basis
		for step := 0; step < 25; step++ {
			bounds = mutateBounds(rng, bins, bounds)
			warm, err := r.Solve(bounds)
			if err != nil {
				t.Fatalf("trial %d step %d: %v", trial, step, err)
			}
			cold, err := p.Solve(&Options{BoundOverride: bounds})
			if err != nil {
				t.Fatal(err)
			}
			if warm.Status != cold.Status {
				t.Fatalf("trial %d step %d: warm %v vs cold %v (bounds %v)",
					trial, step, warm.Status, cold.Status, bounds)
			}
			if warm.Status == Optimal && math.Abs(warm.Obj-cold.Obj) > 1e-6 {
				t.Fatalf("trial %d step %d: warm obj %g vs cold %g (bounds %v)",
					trial, step, warm.Obj, cold.Obj, bounds)
			}
			if warm.Status == Optimal {
				checkFeasible(t, p, bounds, warm.X)
				warmEligible++
			}
		}
		st := r.Stats()
		if warmEligible > 1 && st.Warm == 0 {
			t.Errorf("trial %d: resolver never took the warm path (%+v)", trial, st)
		}
	}
}

// checkFeasible verifies x satisfies all rows and the overridden bounds.
func checkFeasible(t *testing.T, p *Problem, bounds map[ColID][2]float64, x []float64) {
	t.Helper()
	const tol = 1e-6
	for j := 0; j < p.NumCols(); j++ {
		lb, ub := p.Col(ColID(j)).Lb, p.Col(ColID(j)).Ub
		if b, ok := bounds[ColID(j)]; ok {
			lb, ub = b[0], b[1]
		}
		if x[j] < lb-tol || x[j] > ub+tol {
			t.Fatalf("col %d value %g outside [%g,%g]", j, x[j], lb, ub)
		}
	}
	for i := 0; i < p.NumRows(); i++ {
		r := p.Row(i)
		lhs := 0.0
		for _, tm := range r.Terms {
			lhs += tm.Coef * x[tm.Col]
		}
		switch r.Sense {
		case Le:
			if lhs > r.Rhs+tol {
				t.Fatalf("row %d: %g > %g", i, lhs, r.Rhs)
			}
		case Ge:
			if lhs < r.Rhs-tol {
				t.Fatalf("row %d: %g < %g", i, lhs, r.Rhs)
			}
		case Eq:
			if math.Abs(lhs-r.Rhs) > tol {
				t.Fatalf("row %d: %g != %g", i, lhs, r.Rhs)
			}
		}
	}
}

// TestResolverInfeasibleAndBack checks the resolver recovers warm after an
// infeasible bound set, and that reverting overrides restores the base
// optimum.
func TestResolverInfeasibleAndBack(t *testing.T) {
	// min -a-b s.t. a+b <= 1, binaries: optimum -1.
	p := NewProblem("flip")
	a := p.AddCol("a", 0, 1, -1)
	b := p.AddCol("b", 0, 1, -1)
	p.AddRow("cap", Le, 1, Term{Col: a, Coef: 1}, Term{Col: b, Coef: 1})
	r, err := p.NewResolver(nil)
	if err != nil {
		t.Fatal(err)
	}
	base, _ := r.Solve(nil)
	if base.Status != Optimal || math.Abs(base.Obj-(-1)) > 1e-9 {
		t.Fatalf("base: %v obj %g", base.Status, base.Obj)
	}
	// Dive one fixing at a time, as branch and bound does (single-column
	// deltas stay inside the warm gate).
	afix, _ := r.Solve(map[ColID][2]float64{a: {1, 1}})
	if afix.Status != Optimal || math.Abs(afix.Obj-(-1)) > 1e-9 {
		t.Fatalf("a-fixed: %v obj %g", afix.Status, afix.Obj)
	}
	inf, _ := r.Solve(map[ColID][2]float64{a: {1, 1}, b: {1, 1}})
	if inf.Status != Infeasible {
		t.Fatalf("both-fixed: %v, want infeasible", inf.Status)
	}
	again, _ := r.Solve(map[ColID][2]float64{a: {1, 1}})
	if again.Status != Optimal || math.Abs(again.Obj-(-1)) > 1e-9 {
		t.Fatalf("back to a-fixed: %v obj %g", again.Status, again.Obj)
	}
	back, _ := r.Solve(map[ColID][2]float64{})
	if back.Status != Optimal || math.Abs(back.Obj-(-1)) > 1e-9 {
		t.Fatalf("reverted: %v obj %g", back.Status, back.Obj)
	}
	if st := r.Stats(); st.Warm < 3 {
		t.Errorf("expected warm re-solves through the infeasible dip, got %+v", st)
	}
}

// TestResolverReusesBuffers documents the aliasing contract: the Solution
// returned by Solve is overwritten by the next call.
func TestResolverReusesBuffers(t *testing.T) {
	p := NewProblem("alias")
	a := p.AddCol("a", 0, 1, -1)
	p.AddRow("r", Le, 1, Term{Col: a, Coef: 1})
	r, err := p.NewResolver(nil)
	if err != nil {
		t.Fatal(err)
	}
	s1, _ := r.Solve(nil)
	if s1.X[a] != 1 {
		t.Fatalf("base solve: %v", s1.X)
	}
	s2, _ := r.Solve(map[ColID][2]float64{a: {0, 0}})
	if s1 != s2 {
		t.Fatalf("expected the same reused *Solution, got distinct pointers")
	}
	if s2.X[a] != 0 {
		t.Fatalf("re-solve: %v", s2.X)
	}
}

// TestResolverRefactorDrift runs far more warm solves than refactorEvery
// to exercise the periodic rebuild path.
func TestResolverRefactorDrift(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p, bins := randomProblem(rng)
	for len(bins) < 3 {
		p, bins = randomProblem(rng)
	}
	r, err := p.NewResolver(nil)
	if err != nil {
		t.Fatal(err)
	}
	bounds := map[ColID][2]float64{}
	for step := 0; step < refactorEvery+50; step++ {
		bounds = mutateBounds(rng, bins, bounds)
		warm, err := r.Solve(bounds)
		if err != nil {
			t.Fatal(err)
		}
		cold, err := p.Solve(&Options{BoundOverride: bounds})
		if err != nil {
			t.Fatal(err)
		}
		if warm.Status != cold.Status ||
			(warm.Status == Optimal && math.Abs(warm.Obj-cold.Obj) > 1e-6) {
			t.Fatalf("step %d: warm (%v, %g) vs cold (%v, %g)",
				step, warm.Status, warm.Obj, cold.Status, cold.Obj)
		}
	}
	if st := r.Stats(); st.Cold < 2 {
		t.Errorf("expected a periodic refactorization, got %+v", st)
	}
}
