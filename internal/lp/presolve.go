package lp

import (
	"math"

	"sos/internal/telemetry"
)

// presolveInfo is a reduction of a Problem plus the postsolve map that
// restores full solutions. The reductions — fixed-variable substitution,
// empty-row checks, singleton-row-to-bound conversion (bound tightening),
// and activity-bound redundant-row removal — all remain valid when the
// caller later tightens column bounds further (a branch-and-bound node's
// overrides), which is what lets a Resolver presolve once at construction
// and translate per-node bounds instead of re-reducing at every node.
type presolveInfo struct {
	orig *Problem

	// Effective input bounds (problem ∩ override), then tightened by the
	// reductions; indexed by original column.
	lb, ub []float64

	colMap []int32   // original column → reduced column, -1 if eliminated
	fixVal []float64 // value of eliminated columns
	rowCut []bool    // original rows dropped
	objOff float64   // objective contribution of eliminated columns

	reduced    *Problem
	infeasible bool

	rowsCut, colsCut int
}

// presolveFeasTol separates genuine constraint contradictions from
// round-off when deciding empty-row feasibility and crossed bounds.
const presolveFeasTol = 1e-9

// runPresolve reduces p under the given bound overrides (nil for the
// problem's own bounds). The returned info is self-contained: reduced is
// nil only when infeasible was detected before construction.
func runPresolve(p *Problem, ov map[ColID][2]float64) *presolveInfo {
	n, m := len(p.cols), len(p.rows)
	pr := &presolveInfo{
		orig:   p,
		lb:     make([]float64, n),
		ub:     make([]float64, n),
		colMap: make([]int32, n),
		fixVal: make([]float64, n),
		rowCut: make([]bool, m),
	}
	for j, c := range p.cols {
		pr.lb[j], pr.ub[j] = c.Lb, c.Ub
	}
	for c, b := range ov {
		if int(c) >= 0 && int(c) < n {
			pr.lb[c], pr.ub[c] = b[0], b[1]
		}
	}
	fixed := make([]bool, n)

	tol := func(b float64) float64 { return presolveFeasTol * (1 + math.Abs(b)) }

	// Reduction fixpoint: each pass fixes newly degenerate columns, then
	// rescans live rows for empty/singleton/redundant structure. Capped
	// passes keep pathological chains from looping.
	for pass := 0; pass < 10; pass++ {
		changed := false
		for j := 0; j < n; j++ {
			if fixed[j] {
				continue
			}
			if pr.lb[j] > pr.ub[j]+tol(pr.lb[j]) {
				pr.infeasible = true
				return pr
			}
			if pr.ub[j]-pr.lb[j] <= 1e-12 {
				fixed[j] = true
				pr.fixVal[j] = pr.lb[j]
				changed = true
			}
		}
		for i := 0; i < m; i++ {
			if pr.rowCut[i] {
				continue
			}
			r := &p.rows[i]
			b := r.Rhs
			nLive := 0
			lastCol, lastCoef := ColID(-1), 0.0
			minAct, maxAct := 0.0, 0.0
			minInf, maxInf := 0, 0 // unbounded contributions
			for _, t := range r.Terms {
				if fixed[t.Col] {
					b -= t.Coef * pr.fixVal[t.Col]
					continue
				}
				nLive++
				lastCol, lastCoef = t.Col, t.Coef
				lo, hi := pr.lb[t.Col], pr.ub[t.Col]
				if t.Coef > 0 {
					minAct += t.Coef * lo
					if math.IsInf(hi, 1) {
						maxInf++
					} else {
						maxAct += t.Coef * hi
					}
				} else {
					if math.IsInf(hi, 1) {
						minInf++
					} else {
						minAct += t.Coef * hi
					}
					maxAct += t.Coef * lo
				}
			}
			switch {
			case nLive == 0:
				ok := true
				switch r.Sense {
				case Le:
					ok = 0 <= b+tol(b)
				case Ge:
					ok = 0 >= b-tol(b)
				default:
					ok = math.Abs(b) <= tol(b)
				}
				if !ok {
					pr.infeasible = true
					return pr
				}
				pr.rowCut[i] = true
				changed = true
			case nLive == 1 && math.Abs(lastCoef) > 1e-12:
				// Singleton row: fold into the column's bounds.
				v := b / lastCoef
				sense := r.Sense
				if lastCoef < 0 && sense != Eq {
					if sense == Le {
						sense = Ge
					} else {
						sense = Le
					}
				}
				j := lastCol
				switch sense {
				case Le:
					if v < pr.ub[j] {
						pr.ub[j] = v
					}
				case Ge:
					if v > pr.lb[j] {
						pr.lb[j] = v
					}
				default:
					if v < pr.ub[j] {
						pr.ub[j] = v
					}
					if v > pr.lb[j] {
						pr.lb[j] = v
					}
				}
				if pr.lb[j] > pr.ub[j] {
					if pr.lb[j] > pr.ub[j]+tol(pr.lb[j]) {
						pr.infeasible = true
						return pr
					}
					pr.lb[j] = pr.ub[j]
				}
				pr.rowCut[i] = true
				changed = true
			default:
				// Activity-bound redundancy / infeasibility. Infinite
				// contributions leave the corresponding side unknown.
				switch r.Sense {
				case Le:
					if minInf == 0 && minAct > b+tol(b) {
						pr.infeasible = true
						return pr
					}
					if maxInf == 0 && maxAct <= b {
						pr.rowCut[i] = true
						changed = true
					}
				case Ge:
					if maxInf == 0 && maxAct < b-tol(b) {
						pr.infeasible = true
						return pr
					}
					if minInf == 0 && minAct >= b {
						pr.rowCut[i] = true
						changed = true
					}
				default:
					if (minInf == 0 && minAct > b+tol(b)) ||
						(maxInf == 0 && maxAct < b-tol(b)) {
						pr.infeasible = true
						return pr
					}
				}
			}
		}
		if !changed {
			break
		}
	}

	// Build the reduced problem: live columns with tightened bounds, live
	// rows with fixed contributions folded into the rhs.
	red := NewProblem(p.Name + "~pre")
	for j := 0; j < n; j++ {
		if fixed[j] {
			pr.colMap[j] = -1
			pr.objOff += p.cols[j].Obj * pr.fixVal[j]
			pr.colsCut++
			continue
		}
		pr.colMap[j] = int32(red.AddCol(p.cols[j].Name, pr.lb[j], pr.ub[j], p.cols[j].Obj))
	}
	terms := make([]Term, 0, 16)
	for i := 0; i < m; i++ {
		if pr.rowCut[i] {
			pr.rowsCut++
			continue
		}
		r := &p.rows[i]
		b := r.Rhs
		terms = terms[:0]
		for _, t := range r.Terms {
			if j := pr.colMap[t.Col]; j >= 0 {
				terms = append(terms, Term{Col: ColID(j), Coef: t.Coef})
			} else {
				b -= t.Coef * pr.fixVal[t.Col]
			}
		}
		red.AddRow(r.Name, r.Sense, b, terms...)
	}
	pr.reduced = red
	return pr
}

// translate maps per-solve bound overrides on the original columns into
// overrides on the reduced columns, reusing dst. It reports a conflict
// (immediate infeasibility) when an override contradicts an eliminated
// column's fixed value or empties a tightened interval. Overrides are
// assumed to tighten the base bounds (the branch-and-bound invariant);
// intersecting with the presolved bounds keeps the reductions valid.
func (pr *presolveInfo) translate(ov map[ColID][2]float64, dst map[ColID][2]float64) (map[ColID][2]float64, bool) {
	if dst == nil {
		dst = make(map[ColID][2]float64, len(ov))
	} else {
		for c := range dst {
			delete(dst, c)
		}
	}
	for c, b := range ov {
		j := pr.colMap[c]
		if j < 0 {
			v := pr.fixVal[c]
			if v < b[0]-presolveFeasTol || v > b[1]+presolveFeasTol {
				return dst, true
			}
			continue
		}
		lo, hi := math.Max(b[0], pr.lb[c]), math.Min(b[1], pr.ub[c])
		if lo > hi+presolveFeasTol {
			return dst, true
		}
		if lo > hi {
			hi = lo
		}
		dst[ColID(j)] = [2]float64{lo, hi}
	}
	return dst, false
}

// expand maps a reduced-space solution back to the full column space:
// eliminated columns take their fixed values with reduced cost 0 (the
// conservative choice — a zero reduced cost never triggers reduced-cost
// fixing), kept columns copy through.
func (pr *presolveInfo) expand(in *Solution, out *Solution) {
	n := len(pr.colMap)
	out.Status = in.Status
	out.Iters = in.Iters
	out.Obj = in.Obj + pr.objOff
	if cap(out.X) < n {
		out.X = make([]float64, n)
	}
	out.X = out.X[:n]
	// Both kernels attach reduced costs exactly on Optimal; keying off the
	// slice would drop them when presolve eliminated every column.
	withRC := in.Status == Optimal
	if withRC {
		if cap(out.ReducedCosts) < n {
			out.ReducedCosts = make([]float64, n)
		}
		out.ReducedCosts = out.ReducedCosts[:n]
	} else {
		out.ReducedCosts = nil
	}
	for c := 0; c < n; c++ {
		if j := pr.colMap[c]; j >= 0 {
			out.X[c] = in.X[j]
			if withRC {
				out.ReducedCosts[c] = in.ReducedCosts[j]
			}
		} else {
			out.X[c] = pr.fixVal[c]
			if withRC {
				out.ReducedCosts[c] = 0
			}
		}
	}
}

// infeasibleSolution fills out with a canned Infeasible result whose X
// carries the best-known resting values (fixed values, else the effective
// lower bound) so downstream consumers that read X defensively see finite
// numbers.
func (pr *presolveInfo) infeasibleSolution(out *Solution) {
	n := len(pr.colMap)
	out.Status = Infeasible
	out.Obj = 0
	out.Iters = 0
	out.ReducedCosts = nil
	if cap(out.X) < n {
		out.X = make([]float64, n)
	}
	out.X = out.X[:n]
	for c := 0; c < n; c++ {
		if pr.colMap[c] < 0 {
			out.X[c] = pr.fixVal[c]
		} else {
			out.X[c] = pr.lb[c]
		}
	}
}

// emitTelemetry records the reduction counters once per presolve.
func (pr *presolveInfo) emitTelemetry(tel *telemetry.Collector, worker int) {
	if tel == nil {
		return
	}
	tel.Add(telemetry.CtrLPPresolveRows, int64(pr.rowsCut))
	tel.Add(telemetry.CtrLPPresolveCols, int64(pr.colsCut))
	tel.Emit(telemetry.EvLPPresolve, worker, float64(pr.rowsCut+pr.colsCut), "reduce")
}

// presolveSolve is the one-shot presolve → kernel → postsolve pipeline
// behind Problem.Solve when Options.Presolve is set.
func presolveSolve(p *Problem, opts *Options) *Solution {
	pr := runPresolve(p, opts.BoundOverride)
	pr.emitTelemetry(opts.Telemetry, opts.TelemetryWorker)
	sol := &Solution{}
	if pr.infeasible {
		pr.infeasibleSolution(sol)
		return sol
	}
	o2 := *opts
	o2.Presolve = false
	o2.BoundOverride = nil
	inner := pr.reduced.kernelSolve(&o2)
	pr.expand(inner, sol)
	return sol
}
