package lp

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strings"
)

// WriteLP writes the problem in CPLEX LP file format, the lingua franca of
// LP/MILP tooling, so models built here can be inspected by hand or fed to
// an external solver for cross-checking. integerCols marks columns to
// declare in the General section.
func (p *Problem) WriteLP(w io.Writer, integerCols []ColID) error {
	bw := bufio.NewWriter(w)
	isInt := make(map[ColID]bool, len(integerCols))
	for _, c := range integerCols {
		isInt[c] = true
	}
	name := func(c ColID) string {
		n := p.cols[c].Name
		return sanitizeLPName(n, int(c))
	}

	fmt.Fprintf(bw, "\\ Problem: %s (%d cols, %d rows)\n", p.Name, len(p.cols), len(p.rows))
	fmt.Fprintf(bw, "Minimize\n obj:")
	wrote := false
	for j, c := range p.cols {
		if c.Obj == 0 {
			continue
		}
		fmt.Fprintf(bw, " %s", term(c.Obj, name(ColID(j)), !wrote))
		wrote = true
	}
	if !wrote {
		fmt.Fprintf(bw, " 0 %s", name(0))
	}
	fmt.Fprintf(bw, "\nSubject To\n")
	for i, r := range p.rows {
		fmt.Fprintf(bw, " %s:", sanitizeLPName(r.Name, i))
		first := true
		for _, t := range r.Terms {
			fmt.Fprintf(bw, " %s", term(t.Coef, name(t.Col), first))
			first = false
		}
		if first {
			fmt.Fprintf(bw, " 0 %s", name(0))
		}
		fmt.Fprintf(bw, " %s %g\n", r.Sense, r.Rhs)
	}
	fmt.Fprintf(bw, "Bounds\n")
	for j, c := range p.cols {
		switch {
		case c.Lb == 0 && math.IsInf(c.Ub, 1):
			// default bound; omit
		case c.Lb == c.Ub:
			fmt.Fprintf(bw, " %s = %g\n", name(ColID(j)), c.Lb)
		case math.IsInf(c.Ub, 1):
			fmt.Fprintf(bw, " %s >= %g\n", name(ColID(j)), c.Lb)
		default:
			fmt.Fprintf(bw, " %g <= %s <= %g\n", c.Lb, name(ColID(j)), c.Ub)
		}
	}
	if len(integerCols) > 0 {
		fmt.Fprintf(bw, "General\n")
		for _, c := range integerCols {
			fmt.Fprintf(bw, " %s\n", name(c))
		}
	}
	fmt.Fprintf(bw, "End\n")
	return bw.Flush()
}

// term renders one signed coefficient-times-name term.
func term(coef float64, name string, first bool) string {
	sign := "+"
	if coef < 0 {
		sign = "-"
		coef = -coef
	}
	if first && sign == "+" {
		if coef == 1 {
			return name
		}
		return fmt.Sprintf("%g %s", coef, name)
	}
	if coef == 1 {
		return fmt.Sprintf("%s %s", sign, name)
	}
	return fmt.Sprintf("%s %g %s", sign, coef, name)
}

// sanitizeLPName maps arbitrary variable/row names to the LP format's
// restricted charset, keeping them readable and unique via the index.
func sanitizeLPName(n string, idx int) string {
	if n == "" {
		return fmt.Sprintf("c%d", idx)
	}
	var b strings.Builder
	for _, r := range n {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '_', r == '.':
			b.WriteRune(r)
		case r == '(', r == '[', r == '{':
			b.WriteRune('_')
		case r == ')', r == ']', r == '}':
			// drop
		case r == ',', r == ' ', r == '-', r == '>':
			b.WriteRune('_')
		default:
			// drop anything else (greek letters in our names are spelled out)
		}
	}
	s := b.String()
	if s == "" || (s[0] >= '0' && s[0] <= '9') || s[0] == '.' {
		s = "v" + s
	}
	// LP names must be unique; suffix the index defensively.
	return fmt.Sprintf("%s_%d", s, idx)
}
