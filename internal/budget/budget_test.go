package budget

import (
	"context"
	"errors"
	"testing"
	"time"
)

// fakeClock advances only when told, making slice arithmetic exact.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newGoverned(total time.Duration) (*Governor, *fakeClock) {
	c := &fakeClock{t: time.Unix(1000, 0)}
	g := &Governor{frac: defaultFrac, floor: defaultFloor, now: c.now}
	g.deadline = c.t.Add(total)
	return g, c
}

func TestGovernorSlicesDecayAndRollOver(t *testing.T) {
	g, clock := newGoverned(8 * time.Second)
	if got := g.Slice(); got != 4*time.Second {
		t.Fatalf("first slice %v, want 4s", got)
	}
	// Fully consuming the slice halves the next one: exponential decay.
	clock.advance(4 * time.Second)
	if got := g.Slice(); got != 2*time.Second {
		t.Fatalf("second slice %v, want 2s", got)
	}
	// Consuming only a little rolls the unused time over: the next slice
	// is larger than strict decay would allow.
	clock.advance(200 * time.Millisecond)
	if got := g.Slice(); got != 1900*time.Millisecond {
		t.Fatalf("rollover slice %v, want 1.9s", got)
	}
}

func TestGovernorFloorAndExhaustion(t *testing.T) {
	g, clock := newGoverned(time.Second)
	clock.advance(2 * time.Second)
	if !g.Exhausted() {
		t.Fatal("governor past its deadline not exhausted")
	}
	if got := g.Remaining(); got != 0 {
		t.Fatalf("remaining %v past deadline, want 0", got)
	}
	// Past the deadline the slice floors instead of going nonpositive, so
	// a ladder's terminal rungs still get a (tiny) allowance.
	if got := g.Slice(); got != defaultFloor {
		t.Fatalf("exhausted slice %v, want floor %v", got, defaultFloor)
	}
}

func TestGovernorUnlimited(t *testing.T) {
	for _, g := range []*Governor{nil, New(0), {}} {
		if g.Exhausted() {
			t.Fatal("unlimited governor exhausted")
		}
		if got := g.Slice(); got != 0 {
			t.Fatalf("unlimited slice %v, want 0", got)
		}
		if got := g.Limit(3 * time.Second); got != 3*time.Second {
			t.Fatalf("unlimited Limit %v, want the per-solve budget", got)
		}
	}
}

func TestGovernorLimit(t *testing.T) {
	g, _ := newGoverned(8 * time.Second) // slice = 4s
	if got := g.Limit(0); got != 4*time.Second {
		t.Fatalf("Limit(0) %v, want the slice", got)
	}
	if got := g.Limit(time.Second); got != time.Second {
		t.Fatalf("Limit(1s) %v, want the tighter per-solve budget", got)
	}
	if got := g.Limit(time.Minute); got != 4*time.Second {
		t.Fatalf("Limit(1m) %v, want the tighter slice", got)
	}
}

func TestExhaustedWrapsSentinelAndContext(t *testing.T) {
	err := Exhausted(context.Background(), "point %d", 3)
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("plain exhaustion does not wrap ErrExhausted: %v", err)
	}
	if errors.Is(err, context.Canceled) {
		t.Fatalf("plain exhaustion claims cancellation: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = Exhausted(ctx, "mid-sweep")
	if !errors.Is(err, ErrExhausted) || !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled exhaustion must wrap both sentinels: %v", err)
	}
	if err := Exhausted(nil, "no context"); !errors.Is(err, ErrExhausted) {
		t.Fatalf("nil-context exhaustion: %v", err)
	}
}

func TestStatusTaxonomy(t *testing.T) {
	want := map[Status]string{
		StatusOptimal:         "optimal",
		StatusFeasible:        "feasible",
		StatusBudgetExhausted: "budget-exhausted",
		StatusInfeasible:      "infeasible",
		StatusCanceled:        "canceled",
		Status(99):            "unknown",
	}
	for s, str := range want {
		if s.String() != str {
			t.Errorf("Status(%d).String() = %q, want %q", int(s), s.String(), str)
		}
	}
	for _, s := range []Status{StatusOptimal, StatusInfeasible} {
		if !s.Proven() {
			t.Errorf("%v must be proven", s)
		}
	}
	for _, s := range []Status{StatusFeasible, StatusBudgetExhausted, StatusCanceled} {
		if s.Proven() {
			t.Errorf("%v must not be proven", s)
		}
	}
}

func TestDefaultLadder(t *testing.T) {
	cases := []struct {
		first Rung
		want  []Rung
	}{
		{RungMILP, []Rung{RungMILP, RungCombinatorial, RungHeuristic}},
		{RungCombinatorial, []Rung{RungCombinatorial, RungHeuristic}},
		{RungHeuristic, []Rung{RungHeuristic}},
	}
	for _, c := range cases {
		got := DefaultLadder(c.first)
		if len(got) != len(c.want) {
			t.Fatalf("ladder from %v: %v", c.first, got)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("ladder from %v: %v, want %v", c.first, got, c.want)
			}
		}
	}
	if RungMILP.String() != "milp" || RungCombinatorial.String() != "combinatorial" ||
		RungHeuristic.String() != "heuristic" || Rung(9).String() != "unknown" {
		t.Error("rung names wrong")
	}
}
