package budget

import (
	"context"
	"errors"
	"testing"
	"time"
)

// fakeClock advances only when told, making slice arithmetic exact.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newGoverned(total time.Duration) (*Governor, *fakeClock) {
	c := &fakeClock{t: time.Unix(1000, 0)}
	g := &Governor{frac: defaultFrac, floor: defaultFloor, now: c.now}
	g.deadline = c.t.Add(total)
	return g, c
}

func TestGovernorSlicesDecayAndRollOver(t *testing.T) {
	g, clock := newGoverned(8 * time.Second)
	if got := g.Slice(); got != 4*time.Second {
		t.Fatalf("first slice %v, want 4s", got)
	}
	// Fully consuming the slice halves the next one: exponential decay.
	clock.advance(4 * time.Second)
	if got := g.Slice(); got != 2*time.Second {
		t.Fatalf("second slice %v, want 2s", got)
	}
	// Consuming only a little rolls the unused time over: the next slice
	// is larger than strict decay would allow.
	clock.advance(200 * time.Millisecond)
	if got := g.Slice(); got != 1900*time.Millisecond {
		t.Fatalf("rollover slice %v, want 1.9s", got)
	}
}

func TestGovernorFloorAndExhaustion(t *testing.T) {
	g, clock := newGoverned(time.Second)
	clock.advance(2 * time.Second)
	if !g.Exhausted() {
		t.Fatal("governor past its deadline not exhausted")
	}
	if got := g.Remaining(); got != 0 {
		t.Fatalf("remaining %v past deadline, want 0", got)
	}
	// Past the deadline the slice floors instead of going nonpositive, so
	// a ladder's terminal rungs still get a (tiny) allowance.
	if got := g.Slice(); got != defaultFloor {
		t.Fatalf("exhausted slice %v, want floor %v", got, defaultFloor)
	}
}

func TestGovernorUnlimited(t *testing.T) {
	for _, g := range []*Governor{nil, New(0), {}} {
		if g.Exhausted() {
			t.Fatal("unlimited governor exhausted")
		}
		if got := g.Slice(); got != 0 {
			t.Fatalf("unlimited slice %v, want 0", got)
		}
		if got := g.Limit(3 * time.Second); got != 3*time.Second {
			t.Fatalf("unlimited Limit %v, want the per-solve budget", got)
		}
	}
}

func TestGovernorLimit(t *testing.T) {
	g, _ := newGoverned(8 * time.Second) // slice = 4s
	if got := g.Limit(0); got != 4*time.Second {
		t.Fatalf("Limit(0) %v, want the slice", got)
	}
	if got := g.Limit(time.Second); got != time.Second {
		t.Fatalf("Limit(1s) %v, want the tighter per-solve budget", got)
	}
	if got := g.Limit(time.Minute); got != 4*time.Second {
		t.Fatalf("Limit(1m) %v, want the tighter slice", got)
	}
}

func TestGovernorAllowanceAtBoundary(t *testing.T) {
	g, clock := newGoverned(time.Second)
	// While budget remains, Allowance behaves exactly like Limit.
	if got, err := g.Allowance(0); err != nil || got != 500*time.Millisecond {
		t.Fatalf("Allowance(0) = %v, %v; want 500ms slice", got, err)
	}
	// Exactly at the deadline — the boundary — the budget is spent:
	// Allowance must refuse immediately rather than grant a floor slice.
	clock.advance(time.Second)
	if _, err := g.Allowance(0); !errors.Is(err, ErrExhausted) {
		t.Fatalf("Allowance at the deadline boundary = %v, want ErrExhausted", err)
	}
	// One nanosecond before the boundary it must still grant (the floor).
	g2, clock2 := newGoverned(time.Second)
	clock2.advance(time.Second - time.Nanosecond)
	if got, err := g2.Allowance(0); err != nil || got != defaultFloor {
		t.Fatalf("Allowance just inside the boundary = %v, %v; want floor grant", got, err)
	}
	// Unlimited governors never exhaust.
	if got, err := (*Governor)(nil).Allowance(time.Second); err != nil || got != time.Second {
		t.Fatalf("nil-governor Allowance = %v, %v", got, err)
	}
}

func TestGovernorRolloverAtBoundary(t *testing.T) {
	// A point that finishes just before the deadline rolls its sliver over:
	// the next slice is the floor, not zero and not negative.
	g, clock := newGoverned(time.Second)
	clock.advance(time.Second - time.Millisecond)
	if got := g.Slice(); got != defaultFloor {
		t.Fatalf("sliver-remaining slice %v, want floor %v", got, defaultFloor)
	}
	if got, err := g.Allowance(0); err != nil || got != defaultFloor {
		t.Fatalf("sliver-remaining Allowance = %v, %v; want floor", got, err)
	}
	// Crossing the boundary flips Allowance to ErrExhausted while Slice
	// keeps returning the floor (the documented ladder-terminal behavior).
	clock.advance(2 * time.Millisecond)
	if got := g.Slice(); got != defaultFloor {
		t.Fatalf("post-deadline slice %v, want floor %v", got, defaultFloor)
	}
	if _, err := g.Allowance(0); !errors.Is(err, ErrExhausted) {
		t.Fatalf("post-deadline Allowance = %v, want ErrExhausted", err)
	}
}

func TestNewNegativeBudgetIsExhaustedNotUnlimited(t *testing.T) {
	// A zero-or-negative remaining budget — what multi-tenant apportioning
	// computes for a request whose deadline has passed — must yield an
	// immediately exhausted governor, not an unlimited one.
	g := New(-time.Second)
	if !g.Exhausted() {
		t.Fatal("New(negative) governor is not exhausted")
	}
	if _, err := g.Allowance(0); !errors.Is(err, ErrExhausted) {
		t.Fatalf("New(negative).Allowance = %v, want ErrExhausted", err)
	}
	if g := New(0); g.Exhausted() {
		t.Fatal("New(0) must stay unlimited")
	}
}

func TestNewUntil(t *testing.T) {
	if g := NewUntil(time.Time{}); g.Exhausted() || g.Slice() != 0 {
		t.Fatal("NewUntil(zero) must be unlimited")
	}
	past := NewUntil(time.Now().Add(-time.Minute))
	if !past.Exhausted() {
		t.Fatal("NewUntil(past) must be exhausted")
	}
	if _, err := past.Allowance(0); !errors.Is(err, ErrExhausted) {
		t.Fatalf("NewUntil(past).Allowance = %v, want ErrExhausted", err)
	}
	future := NewUntil(time.Now().Add(time.Hour))
	if future.Exhausted() {
		t.Fatal("NewUntil(future) must not be exhausted")
	}
}

func TestMultiGovernorFairShare(t *testing.T) {
	m := NewMulti(8 * time.Second)
	clock := &fakeClock{t: time.Unix(1000, 0)}
	m.now = clock.now

	g1, rel1 := m.Acquire(0, time.Time{})
	if got := g1.Remaining(); got != 8*time.Second {
		t.Fatalf("lone request share %v, want full 8s capacity", got)
	}
	g2, rel2 := m.Acquire(0, time.Time{})
	if got := g2.Remaining(); got != 4*time.Second {
		t.Fatalf("second concurrent request share %v, want 4s (capacity/2)", got)
	}
	if m.Active() != 2 || m.Peak() != 2 {
		t.Fatalf("active %d peak %d, want 2/2", m.Active(), m.Peak())
	}
	rel1()
	rel1() // double release must not corrupt the active count
	rel2()
	if m.Active() != 0 || m.Peak() != 2 {
		t.Fatalf("after release: active %d peak %d, want 0/2", m.Active(), m.Peak())
	}
	// The request's own budget and deadline tighten below the share.
	g3, rel3 := m.Acquire(time.Second, time.Time{})
	defer rel3()
	if got := g3.Remaining(); got != time.Second {
		t.Fatalf("requested-budget share %v, want the tighter 1s", got)
	}
	g4, rel4 := m.Acquire(0, clock.t.Add(500*time.Millisecond))
	defer rel4()
	if got := g4.Remaining(); got != 500*time.Millisecond {
		t.Fatalf("deadline-bounded share %v, want the tighter 500ms", got)
	}
}

func TestMultiGovernorPastDeadlineIsExhausted(t *testing.T) {
	m := NewMulti(time.Minute)
	clock := &fakeClock{t: time.Unix(1000, 0)}
	m.now = clock.now
	g, rel := m.Acquire(time.Second, clock.t.Add(-time.Millisecond))
	defer rel()
	if !g.Exhausted() {
		t.Fatal("past-deadline acquisition must be exhausted")
	}
	if _, err := g.Allowance(0); !errors.Is(err, ErrExhausted) {
		t.Fatalf("past-deadline Allowance = %v, want ErrExhausted", err)
	}
}

func TestMultiGovernorShareFloorAndNil(t *testing.T) {
	m := NewMulti(100 * time.Millisecond)
	var rels []func()
	for i := 0; i < 50; i++ {
		_, rel := m.Acquire(0, time.Time{})
		rels = append(rels, rel)
	}
	g, rel := m.Acquire(0, time.Time{})
	rels = append(rels, rel)
	if got := g.Remaining(); got < defaultShareFloor/2 {
		t.Fatalf("share under burst %v collapsed below the floor", got)
	}
	for _, r := range rels {
		r()
	}
	// A nil MultiGovernor applies no apportioning but still honors the
	// request's own budget.
	var nilm *MultiGovernor
	g2, rel2 := nilm.Acquire(2*time.Second, time.Time{})
	defer rel2()
	if got := g2.Remaining(); got < time.Second || got > 2*time.Second {
		t.Fatalf("nil-multi Acquire remaining %v, want ~2s", got)
	}
	if nilm.Active() != 0 || nilm.Peak() != 0 {
		t.Fatal("nil-multi counters must be zero")
	}
}

func TestExhaustedWrapsSentinelAndContext(t *testing.T) {
	err := Exhausted(context.Background(), "point %d", 3)
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("plain exhaustion does not wrap ErrExhausted: %v", err)
	}
	if errors.Is(err, context.Canceled) {
		t.Fatalf("plain exhaustion claims cancellation: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = Exhausted(ctx, "mid-sweep")
	if !errors.Is(err, ErrExhausted) || !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled exhaustion must wrap both sentinels: %v", err)
	}
	if err := Exhausted(nil, "no context"); !errors.Is(err, ErrExhausted) {
		t.Fatalf("nil-context exhaustion: %v", err)
	}
}

func TestStatusTaxonomy(t *testing.T) {
	want := map[Status]string{
		StatusOptimal:         "optimal",
		StatusFeasible:        "feasible",
		StatusBudgetExhausted: "budget-exhausted",
		StatusInfeasible:      "infeasible",
		StatusCanceled:        "canceled",
		Status(99):            "unknown",
	}
	for s, str := range want {
		if s.String() != str {
			t.Errorf("Status(%d).String() = %q, want %q", int(s), s.String(), str)
		}
	}
	for _, s := range []Status{StatusOptimal, StatusInfeasible} {
		if !s.Proven() {
			t.Errorf("%v must be proven", s)
		}
	}
	for _, s := range []Status{StatusFeasible, StatusBudgetExhausted, StatusCanceled} {
		if s.Proven() {
			t.Errorf("%v must not be proven", s)
		}
	}
}

func TestDefaultLadder(t *testing.T) {
	cases := []struct {
		first Rung
		want  []Rung
	}{
		{RungMILP, []Rung{RungMILP, RungCombinatorial, RungHeuristic}},
		{RungCombinatorial, []Rung{RungCombinatorial, RungHeuristic}},
		{RungHeuristic, []Rung{RungHeuristic}},
	}
	for _, c := range cases {
		got := DefaultLadder(c.first)
		if len(got) != len(c.want) {
			t.Fatalf("ladder from %v: %v", c.first, got)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("ladder from %v: %v, want %v", c.first, got, c.want)
			}
		}
	}
	if RungMILP.String() != "milp" || RungCombinatorial.String() != "combinatorial" ||
		RungHeuristic.String() != "heuristic" || Rung(9).String() != "unknown" {
		t.Error("rung names wrong")
	}
}
