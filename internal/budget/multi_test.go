package budget

import (
	"testing"
	"time"
)

func TestAcquireNThinsShare(t *testing.T) {
	m := NewMulti(12 * time.Second)
	clock := &fakeClock{t: time.Unix(1000, 0)}
	m.now = clock.now

	// A racing request admitted as 3 tenants pays for its concurrency:
	// each racer's window is capacity/3, not capacity.
	gs, rel := m.AcquireN(3, 0, time.Time{})
	if len(gs) != 3 {
		t.Fatalf("got %d governors, want 3", len(gs))
	}
	if m.Active() != 3 {
		t.Fatalf("active %d after AcquireN(3), want 3", m.Active())
	}
	for i, g := range gs {
		if got := g.Remaining(); got != 4*time.Second {
			t.Errorf("racer %d remaining %v, want 4s (12s / 3 tenants)", i, got)
		}
	}

	// A sequential neighbor admitted while the race runs sees 4 tenants.
	g4, rel4 := m.Acquire(0, time.Time{})
	if got := g4.Remaining(); got != 3*time.Second {
		t.Errorf("neighbor remaining %v, want 3s (12s / 4 tenants)", got)
	}
	rel4()
	rel()
	if m.Active() != 0 {
		t.Fatalf("active %d after releases, want 0", m.Active())
	}
}

func TestAcquireNReleaseOnce(t *testing.T) {
	m := NewMulti(time.Minute)
	_, rel := m.AcquireN(3, 0, time.Time{})
	rel()
	rel() // a double release must not drive active negative
	if got := m.Active(); got != 0 {
		t.Fatalf("active %d after double release, want 0", got)
	}
}

func TestAcquireNTightensLikeAcquire(t *testing.T) {
	m := NewMulti(time.Minute)
	clock := &fakeClock{t: time.Unix(1000, 0)}
	m.now = clock.now

	// The requested budget is tighter than the share: it wins.
	gs, rel := m.AcquireN(2, time.Second, time.Time{})
	if got := gs[0].Remaining(); got != time.Second {
		t.Errorf("remaining %v with a 1s request, want 1s", got)
	}
	rel()

	// Deadline headroom tighter than both: it wins.
	gs, rel = m.AcquireN(2, time.Second, clock.t.Add(300*time.Millisecond))
	if got := gs[1].Remaining(); got != 300*time.Millisecond {
		t.Errorf("remaining %v with 300ms headroom, want 300ms", got)
	}
	rel()
}

func TestAcquireNPastDeadlineExhaustedFromBirth(t *testing.T) {
	m := NewMulti(time.Minute)
	clock := &fakeClock{t: time.Unix(1000, 0)}
	m.now = clock.now
	gs, rel := m.AcquireN(2, 0, clock.t.Add(-time.Millisecond))
	defer rel()
	for i, g := range gs {
		if !g.Exhausted() {
			t.Errorf("racer %d not exhausted despite a passed deadline", i)
		}
	}
}

func TestAcquireNNilAndDegenerate(t *testing.T) {
	var nilm *MultiGovernor
	gs, rel := nilm.AcquireN(0, 2*time.Second, time.Time{})
	defer rel()
	if len(gs) != 1 {
		t.Fatalf("AcquireN(0) returned %d governors, want 1", len(gs))
	}
	if got := gs[0].Remaining(); got < 1900*time.Millisecond || got > 2*time.Second {
		t.Errorf("nil-multi remaining %v, want ~2s (request bound only)", got)
	}
}
