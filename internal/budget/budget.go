// Package budget is the home of the solver stack's anytime contract: the
// shared Status taxonomy every engine reports, the typed sentinel error all
// budget/cancel exits wrap, the wall-clock Governor that apportions one
// total budget across the points of a frontier sweep, and the degradation
// Ladder (MILP → combinatorial → heuristic) a governed sweep walks when a
// point cannot be closed exactly within its slice.
//
// The package deliberately depends on nothing but the standard library and
// the (equally dependency-free) telemetry collector, so that internal/exact,
// internal/pareto, and the sos facade can all share one taxonomy without
// import cycles.
package budget

import (
	"context"
	"errors"
	"fmt"
	"time"

	"sos/internal/telemetry"
)

// Status classifies the outcome of an anytime solve. Every engine maps its
// exit onto this taxonomy so callers can treat budget exhaustion as a
// quality level instead of a failure.
type Status int

// Statuses, from best to worst certificate.
const (
	// StatusOptimal: the solution is proven optimal.
	StatusOptimal Status = iota
	// StatusFeasible: an incumbent was found but the budget (time, nodes,
	// or cancellation) fired before optimality was proven; Gap quantifies
	// the remaining uncertainty.
	StatusFeasible
	// StatusBudgetExhausted: the budget fired before any incumbent was
	// found. Nothing is known beyond the lower bound.
	StatusBudgetExhausted
	// StatusInfeasible: proven that no solution exists.
	StatusInfeasible
	// StatusCanceled: the context was canceled before any incumbent was
	// found. (A cancellation after an incumbent reports StatusFeasible;
	// the wrapped error carries the cause.)
	StatusCanceled
)

func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusFeasible:
		return "feasible"
	case StatusBudgetExhausted:
		return "budget-exhausted"
	case StatusInfeasible:
		return "infeasible"
	case StatusCanceled:
		return "canceled"
	}
	return "unknown"
}

// Proven reports whether the status carries a complete certificate
// (optimality or infeasibility).
func (s Status) Proven() bool { return s == StatusOptimal || s == StatusInfeasible }

// ErrExhausted is the sentinel wrapped by every budget- or cancellation-
// driven early exit; check with errors.Is. When the exit was caused by
// context cancellation the returned errors additionally wrap ctx.Err(), so
// errors.Is(err, context.Canceled) also holds.
var ErrExhausted = errors.New("budget exhausted")

// Exhausted builds the typed error for a budget/cancel exit. The result
// wraps ErrExhausted and, when ctx is non-nil and done, ctx.Err() as well.
func Exhausted(ctx context.Context, format string, args ...any) error {
	msg := fmt.Sprintf(format, args...)
	if ctx != nil && ctx.Err() != nil {
		return fmt.Errorf("%s: %w: %w", msg, ErrExhausted, ctx.Err())
	}
	return fmt.Errorf("%s: %w", msg, ErrExhausted)
}

// Governor apportions one wall-clock budget across the points of a sweep.
// Each Slice is a fixed fraction of the time remaining until the
// governor's deadline, so consecutive slices decay exponentially when fully
// used, while any time a point leaves unused automatically rolls over to
// every later point (the remainder is recomputed from the wall clock, not
// from a ledger). A floor keeps late slices from collapsing to zero; once
// the deadline passes, Slice keeps returning the floor so a degradation
// ladder can still run its terminal (cheap) rungs.
//
// The zero value and a nil *Governor are both valid and mean "unlimited":
// Slice returns 0 (no limit) and Exhausted is always false.
type Governor struct {
	deadline time.Time
	frac     float64       // fraction of remaining time per slice
	floor    time.Duration // minimum slice
	now      func() time.Time
	tel      *telemetry.Collector // optional; records granted slices
}

// Default apportioning policy. Half the remaining budget per point means a
// sweep of n points spends ~(1-2⁻ⁿ) of the budget and the first, hardest
// points (highest caps, largest search spaces) get the largest slices —
// matching how frontier difficulty actually falls as the cap tightens.
const (
	defaultFrac  = 0.5
	defaultFloor = 5 * time.Millisecond
)

// New creates a governor over one total wall-clock budget. total == 0
// yields an unlimited governor (every Slice is 0 = no limit). total < 0 —
// a budget already overdrawn, which multi-tenant apportioning can compute
// when a request's deadline has passed — yields an immediately exhausted
// governor, NOT an unlimited one: Exhausted is true from birth and
// Allowance returns ErrExhausted instead of granting a slice.
func New(total time.Duration) *Governor {
	g := &Governor{frac: defaultFrac, floor: defaultFloor, now: time.Now}
	if total != 0 {
		g.deadline = g.now().Add(max(total, 0))
	}
	return g
}

// NewUntil creates a governor whose budget is the time remaining to the
// given wall-clock deadline. A zero deadline yields an unlimited governor;
// a deadline already in the past yields an immediately exhausted one.
func NewUntil(deadline time.Time) *Governor {
	g := &Governor{frac: defaultFrac, floor: defaultFloor, now: time.Now}
	g.deadline = deadline
	return g
}

// Remaining reports the time left before the governor's deadline (0 when
// exhausted; a large positive constant when unlimited).
func (g *Governor) Remaining() time.Duration {
	if g == nil || g.deadline.IsZero() {
		return time.Duration(1<<63 - 1)
	}
	rem := g.deadline.Sub(g.now())
	if rem < 0 {
		return 0
	}
	return rem
}

// Exhausted reports whether the total budget has been consumed.
func (g *Governor) Exhausted() bool {
	return g != nil && !g.deadline.IsZero() && !g.now().Before(g.deadline)
}

// Slice returns the wall-clock allowance for the next solve: a decaying
// fraction of the remaining budget, never below the floor. 0 means
// unlimited (no governor deadline).
func (g *Governor) Slice() time.Duration {
	if g == nil || g.deadline.IsZero() {
		return 0
	}
	s := time.Duration(float64(g.deadline.Sub(g.now())) * g.frac)
	if s < g.floor {
		s = g.floor
	}
	return s
}

// WithTelemetry attaches a collector to the governor: every slice granted
// through Limit is counted and, when tracing, emitted as a slice event whose
// value is the granted allowance in seconds. Returns g for chaining; safe on
// a nil governor (no-op).
func (g *Governor) WithTelemetry(tel *telemetry.Collector) *Governor {
	if g != nil {
		g.tel = tel
	}
	return g
}

// Limit combines a caller-specified per-solve budget with the governor's
// slice: the tighter of the two wins, and 0 on both sides means unlimited.
func (g *Governor) Limit(perSolve time.Duration) time.Duration {
	s := g.Slice()
	var granted time.Duration
	switch {
	case s <= 0:
		granted = perSolve
	case perSolve <= 0 || s < perSolve:
		granted = s
	default:
		granted = perSolve
	}
	if g != nil && g.tel != nil {
		g.tel.Inc(telemetry.CtrSlices)
		g.tel.Emit(telemetry.EvSlice, 0, granted.Seconds(), "")
	}
	return granted
}

// Allowance is Limit with explicit exhaustion: it grants the next solve's
// wall-clock allowance while budget remains and returns ErrExhausted the
// moment none does. Limit's behaviour past the deadline — keep granting
// floor slices so a degradation ladder can run its terminal rungs — is
// exactly wrong for a server admission path: a request whose budget is
// spent (or was computed <= 0 by multi-tenant apportioning) must get an
// immediate BudgetExhausted answer, not an endless train of floor slices.
// The returned error wraps ctx semantics the caller adds; here it is the
// bare sentinel.
func (g *Governor) Allowance(perSolve time.Duration) (time.Duration, error) {
	if g.Exhausted() {
		return 0, fmt.Errorf("governor: %w", ErrExhausted)
	}
	return g.Limit(perSolve), nil
}

// Rung names one level of the degradation ladder.
type Rung int

// Rungs, from most exact to cheapest.
const (
	// RungMILP is the paper's mixed integer-linear programming formulation
	// solved by LP-based branch and bound.
	RungMILP Rung = iota
	// RungCombinatorial is the mapping-enumeration + disjunctive-scheduling
	// branch and bound.
	RungCombinatorial
	// RungHeuristic is the greedy configuration-enumerating synthesizer
	// with ETF scheduling: fast, always terminates, proves nothing.
	RungHeuristic
)

func (r Rung) String() string {
	switch r {
	case RungMILP:
		return "milp"
	case RungCombinatorial:
		return "combinatorial"
	case RungHeuristic:
		return "heuristic"
	}
	return "unknown"
}

// Ladder is an ordered sequence of degradation rungs. A governed sweep
// tries each rung in turn until one proves its point optimal (or
// infeasible); when every rung exhausts its slice, the best incumbent any
// rung produced is kept, annotated with its gap.
type Ladder []Rung

// DefaultLadder returns the standard degradation ladder starting from the
// given exact engine: MILP degrades through the (much faster) combinatorial
// engine to the heuristic; the combinatorial engine degrades straight to
// the heuristic.
func DefaultLadder(first Rung) Ladder {
	switch first {
	case RungMILP:
		return Ladder{RungMILP, RungCombinatorial, RungHeuristic}
	case RungHeuristic:
		return Ladder{RungHeuristic}
	default:
		return Ladder{RungCombinatorial, RungHeuristic}
	}
}
