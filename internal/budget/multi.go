package budget

import (
	"sync"
	"time"
)

// MultiGovernor apportions one server-wide solve-time capacity across
// concurrent requests (tenants). Where the single Governor splits one
// budget across the *points of a sweep*, the MultiGovernor splits solver
// capacity across the *requests of a service*: each admitted request
// acquires a per-request Governor whose total budget is the tightest of
//
//   - the request's own asked-for budget (0 = none given),
//   - the wall-clock time remaining to the request's deadline (zero
//     deadline = none given), and
//   - the request's fair share of capacity — capacity divided by the
//     number of concurrently admitted requests, including this one —
//     never below the configured floor so a brief burst cannot starve
//     every request to zero.
//
// A request whose deadline has already passed at acquisition receives an
// exhausted governor (Allowance returns ErrExhausted immediately); the
// caller turns that into a shed/BudgetExhausted answer instead of
// starting a solve it cannot finish.
//
// A nil *MultiGovernor is valid and applies no capacity apportioning:
// Acquire still honors the request budget and deadline.
type MultiGovernor struct {
	mu       sync.Mutex
	capacity time.Duration // per-request budget when running alone
	floor    time.Duration // minimum fair share under load
	active   int
	peak     int
	now      func() time.Time
}

// defaultShareFloor keeps a request's fair share meaningful under bursts:
// even at high concurrency a request gets at least this much, so the
// degradation ladder's cheap rungs can still run.
const defaultShareFloor = 25 * time.Millisecond

// NewMulti creates a multi-tenant governor over the given per-request
// capacity. capacity <= 0 means no capacity apportioning (requests are
// bounded only by their own budgets and deadlines).
func NewMulti(capacity time.Duration) *MultiGovernor {
	return &MultiGovernor{capacity: capacity, floor: defaultShareFloor, now: time.Now}
}

// Active returns the number of currently admitted (unreleased) requests.
func (m *MultiGovernor) Active() int {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.active
}

// Peak returns the high-water mark of concurrently admitted requests.
func (m *MultiGovernor) Peak() int {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.peak
}

// Acquire admits one request and returns its apportioned Governor plus a
// release function that MUST be called exactly once when the request
// finishes (the release is idempotent-unsafe by design: it decrements the
// active count). requested is the client's own budget ask (0 = none);
// deadline is the wall-clock point the response must exist by (zero =
// none).
func (m *MultiGovernor) Acquire(requested time.Duration, deadline time.Time) (*Governor, func()) {
	var nowf func() time.Time = time.Now
	share := time.Duration(0)
	release := func() {}
	if m != nil {
		m.mu.Lock()
		m.active++
		if m.active > m.peak {
			m.peak = m.active
		}
		if m.capacity > 0 {
			share = m.capacity / time.Duration(m.active)
			if share < m.floor {
				share = m.floor
			}
		}
		nowf = m.now
		m.mu.Unlock()
		var once sync.Once
		release = func() {
			once.Do(func() {
				m.mu.Lock()
				m.active--
				m.mu.Unlock()
			})
		}
	}

	// Tightest of requested budget, deadline headroom, and fair share.
	// total == 0 means "unbounded on this axis"; a negative headroom means
	// the deadline has already passed and must yield an exhausted
	// governor, never an unlimited one.
	total := requested
	tighten := func(d time.Duration) {
		if d != 0 && (total == 0 || d < total) {
			total = d
		}
	}
	tighten(share)
	exhausted := false
	if !deadline.IsZero() {
		head := deadline.Sub(nowf())
		if head <= 0 {
			exhausted = true
		} else {
			tighten(head)
		}
	}

	g := &Governor{frac: defaultFrac, floor: defaultFloor, now: nowf}
	switch {
	case exhausted:
		g.deadline = nowf() // already past: Exhausted from birth
	case total > 0:
		g.deadline = nowf().Add(total)
	}
	return g, release
}

// AcquireN admits one racing request as n concurrent tenants and returns
// one Governor per racer plus a single release for all of them. Racing
// engines run simultaneously, so each occupies a capacity slot: the fair
// share every racer receives is capacity divided by the active count
// *after* all n are admitted. That keeps a racing request honest against
// its sequential neighbors — it buys concurrency with a thinner
// per-engine share rather than by multiplying its allotment.
//
// All n governors open the same wall-clock window (tightest of the
// request budget, the deadline headroom, and the per-racer share), which
// is exactly what a race wants: every entrant gets the full window
// concurrently instead of consuming decaying slices in sequence.
func (m *MultiGovernor) AcquireN(n int, requested time.Duration, deadline time.Time) ([]*Governor, func()) {
	if n < 1 {
		n = 1
	}
	var nowf func() time.Time = time.Now
	share := time.Duration(0)
	release := func() {}
	if m != nil {
		m.mu.Lock()
		m.active += n
		if m.active > m.peak {
			m.peak = m.active
		}
		if m.capacity > 0 {
			share = m.capacity / time.Duration(m.active)
			if share < m.floor {
				share = m.floor
			}
		}
		nowf = m.now
		m.mu.Unlock()
		var once sync.Once
		release = func() {
			once.Do(func() {
				m.mu.Lock()
				m.active -= n
				m.mu.Unlock()
			})
		}
	}

	total := requested
	tighten := func(d time.Duration) {
		if d != 0 && (total == 0 || d < total) {
			total = d
		}
	}
	tighten(share)
	exhausted := false
	if !deadline.IsZero() {
		head := deadline.Sub(nowf())
		if head <= 0 {
			exhausted = true
		} else {
			tighten(head)
		}
	}

	gs := make([]*Governor, n)
	for i := range gs {
		g := &Governor{frac: defaultFrac, floor: defaultFloor, now: nowf}
		switch {
		case exhausted:
			g.deadline = nowf()
		case total > 0:
			g.deadline = nowf().Add(total)
		}
		gs[i] = g
	}
	return gs, release
}
