package sos

import (
	"context"
	"encoding/json"
	"math"
	"testing"
)

// TestResultJSONRoundTrip pins the JSON-safety contract: marshaling must
// never fail on non-finite Gap/Bound, and scalar fields must survive a
// round trip through json.Unmarshal.
func TestResultJSONRoundTrip(t *testing.T) {
	res, err := Synthesize(context.Background(), example1Spec(EngineAuto))
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Result
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Status != res.Status || back.Engine != res.Engine ||
		back.Optimal != res.Optimal || back.Nodes != res.Nodes ||
		back.Bound != res.Bound || back.Gap != res.Gap {
		t.Errorf("round trip mutated scalars:\n got %+v\nwant %+v", back, *res)
	}
	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatalf("output not generic JSON: %v", err)
	}
	if _, ok := raw["design"]; !ok {
		t.Error("design missing from optimal result JSON")
	}
}

// TestResultJSONNonFiniteGap: a heuristic result carries Gap=+Inf, which
// plain json.Marshal rejects. The custom marshaler must emit null and the
// unmarshaler must restore +Inf.
func TestResultJSONNonFiniteGap(t *testing.T) {
	res, err := Synthesize(context.Background(), example1Spec(EngineHeuristic))
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(res.Gap, 1) {
		t.Fatalf("heuristic gap = %g, fixture expects +Inf", res.Gap)
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatalf("marshal with +Inf gap: %v", err)
	}
	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatalf("output not valid JSON: %v", err)
	}
	if raw["gap"] != nil {
		t.Errorf("gap = %v, want null", raw["gap"])
	}
	var back Result
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !math.IsInf(back.Gap, 1) {
		t.Errorf("round-tripped gap = %g, want +Inf", back.Gap)
	}
	if back.Status != StatusFeasible || back.Engine != EngineHeuristic {
		t.Errorf("round trip mutated status/engine: %+v", back)
	}
}

func TestFrontierPointJSON(t *testing.T) {
	pts, err := Frontier(context.Background(), example1Spec(EngineAuto))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 {
		t.Fatal("empty frontier")
	}
	data, err := json.Marshal(pts)
	if err != nil {
		t.Fatalf("marshal frontier: %v", err)
	}
	var raw []map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatalf("frontier JSON invalid: %v", err)
	}
	if len(raw) != len(pts) {
		t.Fatalf("%d JSON points, want %d", len(raw), len(pts))
	}
	for i, m := range raw {
		if m["cost"].(float64) != pts[i].Cost || m["perf"].(float64) != pts[i].Perf {
			t.Errorf("point %d: cost/perf mismatch: %v", i, m)
		}
		if m["status"] != "optimal" {
			t.Errorf("point %d: status %v", i, m["status"])
		}
	}
}

// TestTelemetryViaFacade: Spec.Telemetry threads down to the engines and the
// sweep machinery.
func TestTelemetryViaFacade(t *testing.T) {
	tel := NewTelemetry(nil)
	spec := example1Spec(EngineAuto)
	spec.Telemetry = tel
	res, err := Synthesize(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := tel.Counters()["map_nodes"]; got != int64(res.Nodes) {
		t.Errorf("map_nodes = %d, Result.Nodes = %d", got, res.Nodes)
	}
	if tel.Counters()["incumbents"] < 1 {
		t.Error("no incumbents recorded")
	}

	sweepTel := NewTelemetry(nil)
	sweepSpec := example1Spec(EngineAuto)
	sweepSpec.Telemetry = sweepTel
	pts, err := Frontier(context.Background(), sweepSpec)
	if err != nil {
		t.Fatal(err)
	}
	if got := sweepTel.Counters()["points"]; got != int64(len(pts)) {
		t.Errorf("points counter = %d, frontier has %d", got, len(pts))
	}
}
