package sos

import (
	"context"
	"math"

	"sos/internal/budget"
	"sos/internal/exact"
	"sos/internal/heur"
	"sos/internal/milp"
	"sos/internal/model"
	"sos/internal/race"
	"sos/internal/schedule"
	"sos/internal/telemetry"
)

// solveRace runs one defaulted spec by racing the engine portfolio
// concurrently on a shared incumbent bus: every rung starts at once with
// the full Spec.Budget as its wall-clock window, publishes each feasible
// design it finds, adopts the others' (vetted) designs to tighten its
// own pruning, and the first rung to produce a proof — Optimal or
// Infeasible — wins while the rest are canceled. With no proof the best
// incumbent across rungs is returned StatusFeasible, exactly like the
// sequential ladder's degraded exit.
func solveRace(ctx context.Context, sp Spec, warm []*schedule.Design) (*Result, error) {
	first := budget.RungCombinatorial
	if sp.Engine == EngineMILP {
		first = budget.RungMILP
	}
	var rungs budget.Ladder
	haveMILP := false
	for _, r := range budget.DefaultLadder(first) {
		if r == budget.RungHeuristic && sp.Objective == MinCost {
			continue // the heuristic has no deadline mode
		}
		haveMILP = haveMILP || r == budget.RungMILP
		rungs = append(rungs, r)
	}
	if len(rungs) < 2 && !haveMILP {
		// A race of one is pointless; concurrency makes the MILP a free
		// second prover (it is canceled the moment the other rung proves).
		rungs = append(rungs, budget.RungMILP)
	}
	if len(rungs) < 2 {
		// Nothing to race against; fall back to the plain solve.
		sp.Race = false
		return solve(ctx, sp, warm)
	}

	const eps = 1e-9
	minCost := sp.Objective == MinCost
	vet := func(d *schedule.Design, obj float64) bool {
		if d == nil || d.Graph != sp.Graph || d.Pool != sp.Pool || d.Topo != sp.Topology {
			return false
		}
		if d.Validate(&schedule.ValidateOptions{NoOverlapIO: sp.NoOverlapIO}) != nil {
			return false
		}
		if minCost {
			return d.Makespan <= sp.Deadline+eps
		}
		return sp.CostCap <= 0 || d.Cost <= sp.CostCap+eps
	}
	bus := race.NewBus(vet)

	var entrants []race.Entrant
	for _, r := range rungs {
		switch r {
		case budget.RungMILP:
			entrants = append(entrants, race.Entrant{Rung: r, Run: func(rctx context.Context) (any, bool, error) {
				return raceMILP(rctx, sp, warm, bus)
			}})
		case budget.RungCombinatorial:
			entrants = append(entrants, race.Entrant{Rung: r, Run: func(rctx context.Context) (any, bool, error) {
				return raceExact(rctx, sp, warm, bus)
			}})
		case budget.RungHeuristic:
			entrants = append(entrants, race.Entrant{Rung: r, Run: func(context.Context) (any, bool, error) {
				return raceHeur(sp, bus)
			}})
		}
	}

	return settleSolveRace(ctx, sp, race.Run(ctx, entrants))
}

// raceMILP is the MILP rung of a facade race: the model is built inside
// the entrant (concurrently with the other engines), warm designs seed
// the incumbent pool, and the bus is attached as OnIncumbent/Foreign
// hooks on the solve.
func raceMILP(ctx context.Context, sp Spec, warm []*schedule.Design, bus *race.Bus) (*Result, bool, error) {
	mo := model.Options{CostCap: sp.CostCap, Deadline: sp.Deadline,
		Memory: sp.Memory, NoOverlapIO: sp.NoOverlapIO}
	if sp.Objective == MinCost {
		mo.Objective = model.MinCost
	}
	m, err := model.Build(sp.Graph, sp.Pool, sp.Topology, mo)
	if err != nil {
		return nil, false, err
	}
	var pool [][]float64
	for _, w := range warm {
		if v, err := m.IncumbentVector(w); err == nil {
			pool = append(pool, v)
		}
	}
	sp.Engine = EngineMILP
	res, err := milpSolve(ctx, sp, m, pool, func(o *milp.Options) {
		o.OnIncumbent = func(obj float64, x []float64) {
			if d, err := m.Extract(x); err == nil {
				bus.Publish(budget.RungMILP, d, obj)
			}
		}
		o.Foreign = func(seen uint64) ([]float64, uint64, bool) {
			d, v, ok := bus.Peek(seen)
			if !ok || d == nil {
				return nil, v, false
			}
			if vec, err := m.IncumbentVector(d); err == nil {
				return vec, v, true
			}
			return nil, v, false
		}
	})
	if err != nil {
		return nil, false, err
	}
	return res, res.Optimal || res.Infeasible, nil
}

// raceExact is the combinatorial rung of a facade race, with the bus
// attached directly — designs cross it without vector translation.
func raceExact(ctx context.Context, sp Spec, warm []*schedule.Design, bus *race.Bus) (*Result, bool, error) {
	eo := exact.Options{CostCap: sp.CostCap, Deadline: sp.Deadline,
		TimeLimit: sp.Budget, NoOverlapIO: sp.NoOverlapIO, Telemetry: sp.Telemetry}
	minCost := sp.Objective == MinCost
	if minCost {
		eo.Objective = exact.MinCost
	}
	if len(warm) > 0 {
		eo.Warm = warm[0]
	}
	eo.OnIncumbent = func(d *schedule.Design, cost float64) {
		obj := d.Makespan
		if minCost {
			obj = cost
		}
		bus.Publish(budget.RungCombinatorial, d, obj)
	}
	eo.Foreign = bus.Peek
	r, err := exact.Synthesize(ctx, sp.Graph, sp.Pool, sp.Topology, eo)
	if err != nil {
		return nil, false, err
	}
	res := &Result{
		Engine:     EngineCombinatorial,
		Design:     r.Design,
		Optimal:    r.Optimal && r.Design != nil,
		Infeasible: r.Optimal && r.Design == nil,
		Status:     r.Status,
		Bound:      r.Bound,
		Gap:        r.Gap,
		Nodes:      r.Nodes,
	}
	return res, res.Optimal || res.Infeasible, nil
}

// raceHeur is the heuristic rung: a fast publish-only entrant that seeds
// the bus (and so the exact engines' pruning) but never proves anything.
// Its design is remapped onto the spec's pool so it passes the bus's
// identity vet, exactly as the pareto ladder does.
func raceHeur(sp Spec, bus *race.Bus) (*Result, bool, error) {
	maxCounts := make([]int, sp.Library.NumTypes())
	for _, p := range sp.Pool.Procs() {
		maxCounts[p.Type]++
	}
	hd, err := heur.Synthesize(sp.Graph, sp.Library, sp.Topology, heur.SynthOptions{
		CostCap: sp.CostCap, MaxCounts: maxCounts,
	})
	if err != nil {
		return &Result{Engine: EngineHeuristic, Status: StatusBudgetExhausted}, false, nil
	}
	remapped, err := schedule.RemapPool(hd, sp.Pool)
	if err != nil {
		return &Result{Engine: EngineHeuristic, Status: StatusBudgetExhausted}, false, nil
	}
	canon, err := schedule.Canonicalize(remapped)
	if err != nil || canon.Validate(&schedule.ValidateOptions{NoOverlapIO: sp.NoOverlapIO}) != nil {
		return &Result{Engine: EngineHeuristic, Status: StatusBudgetExhausted}, false, nil
	}
	bus.Publish(budget.RungHeuristic, canon, canon.Makespan)
	res := &Result{Engine: EngineHeuristic, Design: canon,
		Status: StatusFeasible, Gap: math.Inf(1)}
	return res, false, nil // the heuristic proves nothing
}

// settleSolveRace turns a finished facade race into the final Result:
// the winner's certified result when one exists, otherwise the best
// incumbent across rungs with the tightest proven bound any rung
// reached. Errors surface only when every entrant failed — a crashed
// engine must not mask a living one's answer.
func settleSolveRace(ctx context.Context, sp Spec, res race.Result) (*Result, error) {
	objOf := func(r *Result) float64 {
		if sp.Objective == MinCost {
			return r.Design.Cost
		}
		return r.Design.Makespan
	}
	if res.Winner >= 0 {
		w := res.Outcomes[res.Winner]
		raceResultAttribution(sp.Telemetry, w.Rung, true, res.Canceled)
		out := w.Value.(*Result)
		out.Raced = true
		out.Rung = w.Rung.String()
		out.Engine = rungEngine(w.Rung)
		return finishSolve(sp, out)
	}

	var best *Result
	var bestRung budget.Rung
	var bound float64
	var firstErr error
	errs := 0
	for _, o := range res.Outcomes {
		if o.Err != nil {
			errs++
			if firstErr == nil {
				firstErr = o.Err
			}
			continue
		}
		out, ok := o.Value.(*Result)
		if !ok || out == nil {
			continue
		}
		if out.Bound > bound {
			bound = out.Bound // all rungs bound the same objective axis
		}
		if out.Design == nil {
			continue
		}
		if best == nil || objOf(out) < objOf(best)-1e-9 {
			best, bestRung = out, o.Rung
		}
	}
	if best == nil {
		raceResultAttribution(sp.Telemetry, 0, false, res.Canceled)
		if errs == len(res.Outcomes) && firstErr != nil {
			return nil, firstErr
		}
		st := StatusBudgetExhausted
		if ctx.Err() != nil {
			st = StatusCanceled
		}
		return finishSolve(sp, &Result{Engine: sp.Engine, Status: st, Raced: true})
	}
	raceResultAttribution(sp.Telemetry, bestRung, true, res.Canceled)
	best.Raced = true
	best.Rung = bestRung.String()
	best.Engine = rungEngine(bestRung)
	if best.Status != StatusOptimal {
		// An entrant can hold a certificate without having won only if it
		// finished after cancellation began; otherwise it is an incumbent,
		// tightened by the best bound any rung proved before the budget.
		best.Status = StatusFeasible
		if bound > best.Bound {
			best.Bound = bound
		}
		if best.Bound > 0 {
			obj := objOf(best)
			best.Gap = math.Abs(obj-best.Bound) / math.Max(1, math.Abs(obj))
		} else if best.Gap == 0 {
			best.Gap = math.Inf(1)
		}
	}
	return finishSolve(sp, best)
}

// rungEngine maps a winning rung back onto the facade Engine constant it
// represents, so Result.Engine honestly names what produced the design.
func rungEngine(r budget.Rung) Engine {
	switch r {
	case budget.RungMILP:
		return EngineMILP
	case budget.RungHeuristic:
		return EngineHeuristic
	default:
		return EngineCombinatorial
	}
}

// raceResultAttribution folds one finished facade race into telemetry:
// the winning rung's counter, canceled losers, and one EvRace event.
func raceResultAttribution(tel *telemetry.Collector, winner budget.Rung, haveWinner bool, canceled int) {
	label := "none"
	if haveWinner {
		label = winner.String()
		switch winner {
		case budget.RungMILP:
			tel.Inc(telemetry.CtrRaceWinsMILP)
		case budget.RungCombinatorial:
			tel.Inc(telemetry.CtrRaceWinsComb)
		case budget.RungHeuristic:
			tel.Inc(telemetry.CtrRaceWinsHeur)
		}
	}
	tel.Add(telemetry.CtrRaceCanceled, int64(canceled))
	tel.Emit(telemetry.EvRace, 0, float64(canceled), label)
}
