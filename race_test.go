package sos

import (
	"context"
	"math"
	"testing"
	"time"

	"sos/internal/expts"
	"sos/internal/leakcheck"
	"sos/internal/telemetry"
)

// paperWorkloads are the three published sweeps: Table II (Example 1,
// point-to-point), Table IV (Example 2, point-to-point), and Table V
// (Example 2, shared bus).
func paperWorkloads() []struct {
	name string
	spec Spec
} {
	g1, lib1 := expts.Example1()
	g2, lib2 := expts.Example2()
	return []struct {
		name string
		spec Spec
	}{
		{"example1-p2p", Spec{Graph: g1, Library: lib1, Pool: expts.Example1Pool(lib1),
			Budget: 2 * time.Minute}},
		{"example2-p2p", Spec{Graph: g2, Library: lib2, Pool: expts.Example2Pool(lib2),
			Budget: 2 * time.Minute}},
		{"example2-bus", Spec{Graph: g2, Library: lib2, Pool: expts.Example2Pool(lib2),
			Topology: Bus(), Budget: 2 * time.Minute}},
	}
}

// TestRaceMatchesSequentialSolve races each paper workload and checks the
// result against the sequential solve: same status, same objective value,
// honest Raced/Rung attribution, and no leaked loser goroutines.
func TestRaceMatchesSequentialSolve(t *testing.T) {
	defer leakcheck.Check(t)
	for _, w := range paperWorkloads() {
		t.Run(w.name, func(t *testing.T) {
			seq, err := Synthesize(context.Background(), w.spec)
			if err != nil {
				t.Fatal(err)
			}
			raced := w.spec
			raced.Race = true
			tel := telemetry.New(nil)
			raced.Telemetry = tel
			res, err := Synthesize(context.Background(), raced)
			if err != nil {
				t.Fatal(err)
			}
			if res.Status != seq.Status {
				t.Fatalf("raced status %v, sequential %v", res.Status, seq.Status)
			}
			if !res.Raced || res.Rung == "" {
				t.Errorf("race attribution missing: Raced=%v Rung=%q", res.Raced, res.Rung)
			}
			if math.Abs(res.Design.Makespan-seq.Design.Makespan) > 1e-9 {
				t.Errorf("raced makespan %g, sequential %g", res.Design.Makespan, seq.Design.Makespan)
			}
			wins := tel.Get(telemetry.CtrRaceWinsMILP) + tel.Get(telemetry.CtrRaceWinsComb) +
				tel.Get(telemetry.CtrRaceWinsHeur)
			if wins != 1 {
				t.Errorf("race win counters sum to %d, want 1", wins)
			}
		})
	}
}

// TestRaceFrontierBitIdentical sweeps each paper workload with and
// without racing: the frontiers must be bit-identical point for point —
// racing changes wall-clock shape, never the certified answer.
func TestRaceFrontierBitIdentical(t *testing.T) {
	defer leakcheck.Check(t)
	for _, w := range paperWorkloads() {
		t.Run(w.name, func(t *testing.T) {
			seq, err := Frontier(context.Background(), w.spec)
			if err != nil {
				t.Fatal(err)
			}
			raced := w.spec
			raced.Race = true
			got, err := Frontier(context.Background(), raced)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(seq) {
				t.Fatalf("raced frontier has %d points, sequential %d", len(got), len(seq))
			}
			for i := range got {
				if math.Float64bits(got[i].Cost) != math.Float64bits(seq[i].Cost) ||
					math.Float64bits(got[i].Perf) != math.Float64bits(seq[i].Perf) {
					t.Errorf("point %d: raced (%g, %g), sequential (%g, %g)",
						i, got[i].Cost, got[i].Perf, seq[i].Cost, seq[i].Perf)
				}
				if got[i].Status != seq[i].Status {
					t.Errorf("point %d: raced status %v, sequential %v", i, got[i].Status, seq[i].Status)
				}
			}
		})
	}
}

// TestRaceMILPEntry races from the MILP entry rung (all three engines
// run) on Example 1 and still certifies the paper's optimum.
func TestRaceMILPEntry(t *testing.T) {
	if testing.Short() {
		t.Skip("MILP in -short mode")
	}
	defer leakcheck.Check(t)
	spec := example1Spec(EngineMILP)
	spec.Race = true
	res, err := Synthesize(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Optimal || res.Design == nil {
		t.Fatalf("raced MILP-entry solve not optimal: %+v", res)
	}
	if math.Abs(res.Design.Makespan-2.5) > 1e-9 {
		t.Errorf("makespan %g, want 2.5", res.Design.Makespan)
	}
	if !res.Raced {
		t.Error("result not marked Raced")
	}
}

// TestRaceMinCost races the deadline objective (heuristic rung dropped —
// it has no deadline mode) and matches the sequential answer.
func TestRaceMinCost(t *testing.T) {
	defer leakcheck.Check(t)
	spec := example1Spec(EngineAuto)
	spec.Objective = MinCost
	spec.Deadline = 7
	spec.Race = true
	res, err := Synthesize(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Optimal || math.Abs(res.Design.Cost-5) > 1e-9 {
		t.Fatalf("raced min cost at deadline 7 = %+v, want cost 5 optimal", res)
	}
	if !res.Raced || res.Rung != "combinatorial" && res.Rung != "milp" {
		t.Errorf("attribution Raced=%v Rung=%q", res.Raced, res.Rung)
	}
}

// TestRaceInfeasible: a proven-infeasible cap is a proof and ends the
// race like any other certificate.
func TestRaceInfeasible(t *testing.T) {
	defer leakcheck.Check(t)
	spec := example1Spec(EngineAuto)
	spec.CostCap = 3
	spec.Race = true
	res, err := Synthesize(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Infeasible || res.Design != nil {
		t.Fatalf("cap 3 should be proven infeasible: %+v", res)
	}
	if !res.Raced {
		t.Error("result not marked Raced")
	}
}

// TestRaceChaosWinnerPanics is the chaos case the race was built for: the
// MILP entrant crashes mid-solve (failpoint panic on its third node), and
// the race adopts the surviving combinatorial engine's proof instead of
// surfacing the crash. Canceled losers must not leak goroutines.
func TestRaceChaosWinnerPanics(t *testing.T) {
	defer leakcheck.Check(t)
	spec := example1Spec(EngineMILP)
	spec.Race = true
	spec.Hooks = &SolverHooks{OnNode: func(int) {
		panic("injected MILP worker crash")
	}}
	tel := telemetry.New(nil)
	spec.Telemetry = tel
	res, err := Synthesize(context.Background(), spec)
	if err != nil {
		t.Fatalf("crashed entrant leaked out of the race: %v", err)
	}
	if !res.Optimal || res.Design == nil {
		t.Fatalf("surviving engine's proof not adopted: %+v", res)
	}
	if math.Abs(res.Design.Makespan-2.5) > 1e-9 {
		t.Errorf("makespan %g, want 2.5", res.Design.Makespan)
	}
	if res.Rung == "milp" {
		t.Errorf("crashed rung credited with the win")
	}
	if tel.Get(telemetry.CtrRaceWinsMILP) != 0 {
		t.Error("race_wins_milp ticked for a crashed MILP entrant")
	}
}

// TestRaceHeuristicEngineIgnoresRace: a heuristic-only spec has nothing
// to race against; Race is ignored and the result is unmarked.
func TestRaceHeuristicEngineIgnoresRace(t *testing.T) {
	spec := example1Spec(EngineHeuristic)
	spec.Race = true
	res, err := Synthesize(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Raced || res.Rung != "" {
		t.Errorf("heuristic solve claimed race attribution: Raced=%v Rung=%q", res.Raced, res.Rung)
	}
}
