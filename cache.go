package sos

import (
	"context"

	icache "sos/internal/cache"
	"sos/internal/pareto"
	"sos/internal/schedule"
)

// maxWarmStarts bounds how many cached near-miss designs seed one solve.
const maxWarmStarts = 4

// CacheOptions configures NewCache.
type CacheOptions struct {
	// Capacity bounds the number of cached proofs (<= 0 selects 4096).
	Capacity int
	// Shards is the number of independently locked cache segments
	// (<= 0 selects 16).
	Shards int
	// PersistPath, when non-empty, appends every stored proof to a JSONL
	// spill file and warm-loads existing lines at construction, so a
	// restarted process starts with its proofs back.
	PersistPath string
	// Telemetry receives the cache_* counters and EvCache trace events.
	Telemetry *Telemetry
	// Frontiers additionally caches whole swept Pareto frontiers: Frontier
	// calls with this cache attached serve repeat sweeps from the store
	// and delta-resolve partially covered cap ranges (DESIGN.md §15).
	// When PersistPath is set, frontiers persist to PersistPath+".frontiers".
	Frontiers bool
	// FrontierCapacity bounds the number of cached frontiers when
	// Frontiers is set (<= 0 selects 256).
	FrontierCapacity int
}

// Cache is a cross-request result cache: a sharded LRU of proved results
// keyed by a canonical content hash of the problem, with single-flight
// deduplication of concurrent identical requests. Attach one to
// Spec.Cache (or server.Config.Cache) and share it across requests; all
// methods are safe for concurrent use.
//
// Only proofs (StatusOptimal, StatusInfeasible) are ever stored or
// served, and a proof at one cost cap also answers nearby caps via the
// cover-down rule — see DESIGN.md §13 for the soundness argument.
type Cache struct {
	c *icache.Cache
	f *icache.FrontierStore // nil unless CacheOptions.Frontiers
}

// NewCache builds a result cache.
func NewCache(opts CacheOptions) (*Cache, error) {
	c, err := icache.New(icache.Options{
		Capacity:    opts.Capacity,
		Shards:      opts.Shards,
		PersistPath: opts.PersistPath,
		Telemetry:   opts.Telemetry,
	})
	if err != nil {
		return nil, err
	}
	out := &Cache{c: c}
	if opts.Frontiers {
		fpath := ""
		if opts.PersistPath != "" {
			fpath = opts.PersistPath + ".frontiers"
		}
		f, err := icache.NewFrontierStore(icache.FrontierOptions{
			Capacity:    opts.FrontierCapacity,
			PersistPath: fpath,
			Telemetry:   opts.Telemetry,
		})
		if err != nil {
			c.Close()
			return nil, err
		}
		out.f = f
	}
	return out, nil
}

// Close flushes and closes the persistent spills, if any.
func (c *Cache) Close() error {
	err := c.c.Close()
	if c.f != nil {
		if ferr := c.f.Close(); err == nil {
			err = ferr
		}
	}
	return err
}

// Len reports the number of cached proofs.
func (c *Cache) Len() int { return c.c.Len() }

// Loaded reports how many persisted proofs were restored (and how many
// spill lines were skipped as corrupt or stale) at construction.
func (c *Cache) Loaded() (restored, skipped int) { return c.c.Loaded() }

// FrontierLen reports the number of cached frontiers (0 when the cache
// was built without CacheOptions.Frontiers).
func (c *Cache) FrontierLen() int {
	if c.f == nil {
		return 0
	}
	return c.f.Len()
}

// FrontierLoaded reports how many persisted frontiers were restored (and
// how many spill lines were skipped) at construction.
func (c *Cache) FrontierLoaded() (restored, skipped int) {
	if c.f == nil {
		return 0, 0
	}
	return c.f.Loaded()
}

// probe canonicalizes a defaulted spec into a cache probe.
func (c *Cache) probe(sp Spec) (*icache.Probe, error) {
	obj := icache.MinMakespan
	if sp.Objective == MinCost {
		obj = icache.MinCost
	}
	return icache.Prepare(icache.Request{
		Graph:       sp.Graph,
		Pool:        sp.Pool,
		Topo:        sp.Topology,
		Objective:   obj,
		CostCap:     sp.CostCap,
		Deadline:    sp.Deadline,
		Memory:      sp.Memory,
		NoOverlapIO: sp.NoOverlapIO,
	})
}

// synthesize is the cached solve path. ok=false means the spec turned
// out to be uncacheable and the caller should solve directly.
func (c *Cache) synthesize(ctx context.Context, sp Spec) (*Result, error, bool) {
	p, err := c.probe(sp)
	if err != nil {
		return nil, nil, false
	}
	if hit := c.c.Lookup(p); hit != nil {
		return resultFromHit(sp, hit), nil, true
	}

	// Miss: solve, deduplicating concurrent identical requests. The
	// single-flight leader solves under its own context and stores any
	// proof before followers wake.
	var res *Result
	var solveErr error
	shared, _ := c.c.Do(ctx, p.Key(), func() error {
		res, solveErr = c.solveStore(ctx, sp, p)
		return solveErr
	})
	if !shared {
		return res, solveErr, true
	}

	// Follower: the leader finished (or our wait was canceled). Its
	// result references the leader's problem objects, not ours, so
	// re-probe the cache — Lookup remaps the stored proof into our
	// frame. If the leader produced no proof (failed, canceled, budget
	// ran out), fall back to our own solve; a canceled follower context
	// surfaces through the engines' normal cancellation paths.
	if hit := c.c.Lookup(p); hit != nil {
		return resultFromHit(sp, hit), nil, true
	}
	r, err := c.solveStore(ctx, sp, p)
	return r, err, true
}

// solveStore solves with cached near-miss warm starts injected and
// stores the result back when it is a proof.
func (c *Cache) solveStore(ctx context.Context, sp Spec, p *icache.Probe) (*Result, error) {
	warm := c.c.WarmStarts(p, maxWarmStarts)
	res, err := solve(ctx, sp, warm)
	if err == nil {
		c.storeProof(p, res)
	}
	return res, err
}

// resultFromHit converts a served cache hit into a Result. The hit's
// design is already remapped onto this spec's graph/pool and re-validated
// by the cache layer.
func resultFromHit(sp Spec, hit *icache.Hit) *Result {
	res := &Result{Engine: sp.Engine, Cached: true}
	if hit.Infeasible {
		res.Status = StatusInfeasible
		res.Infeasible = true
		return res
	}
	res.Design = hit.Design
	res.Status = StatusOptimal
	res.Optimal = true
	res.Bound = hit.Bound
	return res
}

// warmDesignsFor exposes cached near-miss designs for a spec (used by
// the batch path to seed grouped solves).
func (c *Cache) warmDesignsFor(p *icache.Probe, max int) []*schedule.Design {
	return c.c.WarmStarts(p, max)
}

// frontierStep is the cost-cap decrement of Frontier sweeps. The facade
// never overrides pareto's default step of 1, so the store keys every
// frontier under the same step.
const frontierStep = 1.0

// frontierProbe canonicalizes a defaulted spec for the frontier store.
// Frontiers are always chains of min-makespan proofs, so the probe is
// keyed under MinMakespan regardless of the spec's point objective; the
// start cap only parameterizes the range query, not the family.
func (c *Cache) frontierProbe(sp Spec) (*icache.Probe, error) {
	return icache.Prepare(icache.Request{
		Graph:       sp.Graph,
		Pool:        sp.Pool,
		Topo:        sp.Topology,
		Objective:   icache.MinMakespan,
		CostCap:     sp.CostCap,
		Memory:      sp.Memory,
		NoOverlapIO: sp.NoOverlapIO,
	})
}

// frontier is the cached sweep path behind Frontier. ok=false means the
// cache was built without frontier support (or the spec would not
// canonicalize) and the caller should sweep directly.
//
// The sweep always runs — the store plugs in as its FrontierSource, so a
// fully covered range costs one serve pass and zero solver calls, while
// a partially covered one solves only the uncovered caps with cached
// neighbors as warm incumbents. Finish classifies the outcome and
// splices any newly certified points back into the store.
func (c *Cache) frontier(ctx context.Context, sp Spec) ([]FrontierPoint, error, bool) {
	if c == nil || c.f == nil {
		return nil, nil, false
	}
	p, err := c.frontierProbe(sp)
	if err != nil {
		return nil, nil, false
	}
	var out []FrontierPoint
	var sweepErr error
	run := func() error {
		v := c.f.View(p, frontierStep, sp.CostCap)
		opts := sweepOptions(sp)
		opts.Source = v
		pts, err := pareto.Sweep(ctx, sp.Graph, sp.Pool, sp.Topology, opts)
		v.Finish(pts, err)
		out, sweepErr = frontierPoints(pts), err
		return err
	}
	shared, _ := c.f.Do(ctx, p, frontierStep, sp.CostCap, run)
	if shared {
		// Follower: the leader finished (or our wait was canceled). Its
		// points live in its own frame, so re-sweep — the store now holds
		// the chain and serves it remapped without solver calls. If the
		// leader failed, this degenerates to an ordinary sweep.
		if err := ctx.Err(); err != nil {
			return nil, err, true
		}
		run()
	}
	return out, sweepErr, true
}
