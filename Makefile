GO ?= go

.PHONY: tier1 vet build test bench-smoke bench perf perf-sweep perf-sweep-check perf-lp perf-lp-check perf-cache perf-cache-check perf-race perf-race-check perf-frontier perf-frontier-check perf-scale fuzz-smoke lint soak-smoke server-race

## tier1: the gate every change must pass — vet, build, race-enabled
## tests, a one-iteration smoke of the headline benchmark, and a short
## soak of the synthesis service under mixed concurrent traffic.
tier1: vet build test bench-smoke soak-smoke

vet:
	$(GO) vet ./...

## lint: vet plus staticcheck. staticcheck is used when present on PATH
## (CI installs it); locally the target degrades to vet-only with a note
## rather than requiring a network install.
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./... ; \
	else \
		echo "staticcheck not on PATH; skipped (install: go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

## bench-smoke: single iteration of BenchmarkTable2MILP; catches
## regressions that break the reproduced Table II (the benchmark asserts
## the frontier on every iteration) without a full measurement run.
bench-smoke:
	$(GO) test -run 'NO_TESTS' -bench 'BenchmarkTable2MILP$$' -benchtime 1x .

## bench: the full measurement suite with allocation stats.
bench:
	$(GO) test -run 'NO_TESTS' -bench . -benchmem .

## perf: machine-readable solver-throughput report (BENCH_<date>.json).
perf:
	$(GO) run ./cmd/sosbench -perf

## perf-sweep: sweep-scaling report for the speculative-parallel Pareto
## sweep (DESIGN.md §10) — Table II at 1/2/4 workers, frontier asserted
## identical, written to BENCH_sweep.json.
perf-sweep:
	$(GO) run ./cmd/sosbench -perf-sweep

## perf-sweep-check: re-measure the sweep-scaling workloads and fail on a
## >20% ns/op slowdown against the committed BENCH_sweep.json (CI gate).
perf-sweep-check:
	$(GO) run ./cmd/sosbench -perf-sweep -check-baseline

## perf-lp: LP-kernel throughput report (dense tableau vs sparse revised
## simplex vs sparse+presolve) on pinned workloads, written to
## BENCH_lp.json. Commit the refreshed file with perf-affecting PRs.
perf-lp:
	$(GO) run ./cmd/sosbench -perf-lp

## perf-lp-check: re-measure the pinned LP benchmarks and fail on a >20%
## ns/op slowdown against the committed BENCH_lp.json (the CI perf gate).
perf-lp-check:
	$(GO) run ./cmd/sosbench -perf-lp -check-baseline

## perf-cache: result-cache report — repeat-heavy p50 with/without the
## cache, zero-hit overhead, near-miss warm-start node counts — written
## to BENCH_cache.json.
perf-cache:
	$(GO) run ./cmd/sosbench -perf-cache

## perf-cache-check: re-measure and fail unless the cache holds its
## bars: >=5x repeat-heavy p50, <5% zero-hit overhead, warm starts never
## enlarging the MILP search (the CI cache gate).
perf-cache-check:
	$(GO) run ./cmd/sosbench -perf-cache -check-baseline

## perf-race: engine-portfolio racing report — budget-constrained Table II
## sweep, sequential ladder vs concurrent race on the shared incumbent
## bus — written to BENCH_race.json.
perf-race:
	$(GO) run ./cmd/sosbench -perf-race

## perf-race-check: re-measure and fail unless racing beats the
## sequential ladder's wall-clock AND returns the bit-identical frontier
## (the CI racing gate — invariants, not machine-speed ratchets).
perf-race-check:
	$(GO) run ./cmd/sosbench -perf-race -check-baseline

## perf-frontier: frontier-store report — repeat sweeps of the paper's
## three frontiers through the store vs cold, plus delta-resolve point
## accounting — written to BENCH_frontier.json.
perf-frontier:
	$(GO) run ./cmd/sosbench -perf-frontier

## perf-frontier-check: re-measure and fail unless the store holds its
## bars: >=1000x repeat-sweep p50 on the Example 2 workloads (>=25x on
## the millisecond-scale Table II stream), every cached frontier
## bit-identical to the cold sweep, and delta-resolve solving exactly
## the uncovered points (the CI frontier gate).
perf-frontier-check:
	$(GO) run ./cmd/sosbench -perf-frontier -check-baseline

## perf-scale: large-instance scaling sweep — structured 50-800-subtask
## forced-mapping instances through the sparse MILP stack — written to
## BENCH_scale.json. Reporting only; no gate.
perf-scale:
	$(GO) run ./cmd/sosbench -perf-scale

## server-race: the sosd chaos suite — fault injection, hostile clients,
## saturation storms, shutdown under load — under the race detector.
server-race:
	$(GO) test -race -count=1 -timeout 5m ./internal/server ./cmd/sosd

## soak-smoke: sosd under 8 concurrent mixed clients (solves, sweeps,
## malformed bodies, probes) for ~30s, asserting zero 5xx throughout.
## SOSD_SOAK overrides the duration (plain `go test` runs 2s).
soak-smoke:
	SOSD_SOAK=30s $(GO) test -race -count=1 -run 'TestSoakSmoke$$' -v -timeout 5m ./internal/server

## fuzz-smoke: ~45s of coverage-guided fuzzing over the two parsing
## surfaces (spec files and task-graph JSON) and the cache's canonical
## key (rename/reorder invariance, no semantic collisions). The corpus
## under testdata/ pins every crasher ever found; plain `go test`
## replays it as seeds.
fuzz-smoke:
	$(GO) test -run NO_TESTS -fuzz 'FuzzSpecfile$$' -fuzztime 15s ./internal/specfile
	$(GO) test -run NO_TESTS -fuzz 'FuzzGraphValidate$$' -fuzztime 15s ./internal/taskgraph
	$(GO) test -run NO_TESTS -fuzz 'FuzzCanonicalKey$$' -fuzztime 15s ./internal/cache
